"""HTTP service end-to-end: protocol, errors, and the concurrency
acceptance test (8 clients, overlapping tunes, coalescing, bit-match).
"""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.core.fraz import FRaZ
from repro.serve import (
    BackpressureError,
    JobFailedError,
    Scheduler,
    ServiceClient,
    ServiceServer,
)
from repro.serve.jobs import JobSpec


@pytest.fixture(scope="module")
def fields():
    """Two distinct fields shared by every client (overlapping workload)."""
    out = []
    for seed in (21, 22):
        r = np.random.default_rng(seed)
        out.append(r.standard_normal((24, 24)).cumsum(axis=0).astype(np.float32))
    return out


@pytest.fixture()
def server():
    with ServiceServer(port=0, workers=2, queue_size=32) as srv:
        yield srv


class TestProtocol:
    def test_health_and_stats(self, server):
        client = ServiceClient(server.url)
        assert client.health()["status"] == "ok"
        stats = client.stats()
        assert stats["queue"]["capacity"] == 32
        assert stats["workers"] == 2

    def test_submit_status_result(self, server, fields):
        client = ServiceClient(server.url)
        ticket = client.submit_array(fields[0], kind="tune", target_ratio=8.0,
                                     tolerance=0.15)
        assert ticket["job_id"]
        result = client.result(ticket["job_id"], timeout=60)
        assert result["kind"] == "tune"
        status = client.status(ticket["job_id"])
        assert status["state"] == "done"
        assert status["attempts"] == 1

    def test_invalid_spec_is_400(self, server):
        req = urllib.request.Request(
            server.url + "/submit",
            data=json.dumps({"kind": "frobnicate"}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=5)
        assert exc.value.code == 400

    def test_malformed_json_is_400(self, server):
        req = urllib.request.Request(
            server.url + "/submit", data=b"{nope", method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=5)
        assert exc.value.code == 400

    def test_unknown_job_is_404(self, server):
        client = ServiceClient(server.url)
        from repro.serve import ServiceError

        with pytest.raises(ServiceError) as exc:
            client.status("j-nope")
        assert exc.value.status == 404

    def test_unknown_endpoint_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(server.url + "/frobnicate", timeout=5)
        assert exc.value.code == 404

    def test_pending_result_is_202(self, fields):
        with ServiceServer(port=0, workers=1, paused=True) as srv:
            client = ServiceClient(srv.url)
            ticket = client.submit_array(fields[0], kind="tune", target_ratio=8.0)
            pending = client.result(ticket["job_id"], wait=False)
            assert pending.get("pending") is True
            srv.scheduler.resume()
            result = client.result(ticket["job_id"], timeout=60)
            assert result["kind"] == "tune"

    def test_failed_job_raises(self, server, tmp_path):
        client = ServiceClient(server.url)
        ticket = client.submit(kind="tune", target_ratio=8.0,
                               input=str(tmp_path / "missing.npy"),
                               max_retries=0)
        with pytest.raises(JobFailedError, match="FileNotFoundError"):
            client.result(ticket["job_id"], timeout=60)

    def test_backpressure_is_429_and_client_backs_off(self, fields):
        sched = Scheduler(workers=1, queue_size=1, paused=True)
        with ServiceServer(scheduler=sched, port=0) as srv:
            client = ServiceClient(srv.url, backpressure_wait=0.0)
            client.submit_array(fields[0], kind="tune", target_ratio=8.0)
            with pytest.raises(BackpressureError):
                client.submit_array(fields[1], kind="tune", target_ratio=8.0)
            stats = client.stats()
            assert stats["queue"]["rejected"] >= 1
            sched.resume()

    def test_compress_job_via_path(self, server, fields, tmp_path):
        src = tmp_path / "f.npy"
        out = tmp_path / "f.frz"
        np.save(src, fields[0])
        client = ServiceClient(server.url)
        ticket = client.submit(kind="compress", error_bound=1e-2,
                               input=str(src), output=str(out))
        result = client.result(ticket["job_id"], timeout=60)
        assert result["output"] == str(out)
        assert out.exists()


class TestConcurrentClientsAcceptance:
    """ISSUE 3 acceptance: >= 8 concurrent clients, overlapping tune jobs,
    bit-match with serial execution, coalesce counter > 0.  ISSUE 4 extends
    it across execution backends: the process pool must produce the same
    bits and the same coalescing behaviour as thread execution."""

    N_CLIENTS = 8
    TARGETS = (6.0, 9.0)

    def _serial_reference(self, fields):
        ref = {}
        for fi, field in enumerate(fields):
            for target in self.TARGETS:
                res = FRaZ(compressor="sz", target_ratio=target,
                           tolerance=0.15).tune(field)
                ref[(fi, target)] = (res.error_bound, res.ratio)
        return ref

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_eight_clients_overlapping_tunes(self, fields, executor):
        # Paused while the clients race their submissions in, so every
        # duplicate deterministically lands in the coalescing window; the
        # workers then drain the (tiny) queue.
        sched = Scheduler(workers=2, queue_size=32, paused=True,
                          executor=executor)
        n_specs = len(fields) * len(self.TARGETS)
        n_jobs = self.N_CLIENTS * n_specs
        results: dict[tuple[int, int, float], dict] = {}
        errors: list[Exception] = []
        barrier = threading.Barrier(self.N_CLIENTS)
        submitted = threading.Barrier(self.N_CLIENTS)
        encoded = [JobSpec.encode_array(f) for f in fields]

        with ServiceServer(scheduler=sched, port=0) as srv:
            url = srv.url

            def client_run(cid: int) -> None:
                try:
                    client = ServiceClient(url)  # one client per thread
                    barrier.wait(timeout=30)
                    tickets = []
                    for fi in range(len(fields)):
                        for target in self.TARGETS:
                            t = client.submit(kind="tune", target_ratio=target,
                                              tolerance=0.15, data_b64=encoded[fi])
                            tickets.append((fi, target, t["job_id"]))
                    # Only once *every* client has submitted may the
                    # scheduler start working (one thread flips the gate).
                    if submitted.wait(timeout=30) == 0:
                        sched.resume()
                    for fi, target, job_id in tickets:
                        results[(cid, fi, target)] = client.result(job_id, timeout=120)
                except Exception as exc:  # pragma: no cover - failure reporting
                    errors.append(exc)

            threads = [threading.Thread(target=client_run, args=(i,))
                       for i in range(self.N_CLIENTS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(180)
            assert not errors, errors
            stats = ServiceClient(url).stats()

        # (a) every client's every result bit-matches serial execution
        assert len(results) == n_jobs
        reference = self._serial_reference(fields)
        for (cid, fi, target), payload in results.items():
            bound, ratio = reference[(fi, target)]
            assert payload["error_bound"] == bound, (cid, fi, target)
            assert payload["ratio"] == ratio, (cid, fi, target)

        # (b) concurrent duplicates were coalesced, not recomputed
        assert stats["jobs"]["coalesced"] > 0
        assert stats["jobs"]["coalesced"] == n_jobs - n_specs
        assert stats["jobs"]["submitted"] == n_jobs
        assert stats["jobs"]["completed"] == n_jobs
        assert stats["jobs"]["failed"] == 0

        # The whole 32-job workload paid for at most one search per unique
        # spec (shared cache may make even those overlap).
        serial_calls = sum(
            FRaZ(compressor="sz", target_ratio=t, tolerance=0.15).tune(fields[fi])
            .evaluations
            for fi in range(len(fields)) for t in self.TARGETS
        ) * self.N_CLIENTS
        assert stats["search"]["compressor_calls"] < serial_calls
