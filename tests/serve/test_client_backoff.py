"""Deterministic 429/Retry-After behaviour of :class:`ServiceClient`.

A scripted stdlib HTTP server returns a pre-programmed response sequence,
so the tests pin down exactly what the client does under backpressure
without any real scheduler (or timing luck) involved: suggested delays
are honoured, the ``backpressure_wait`` deadline expires promptly instead
of hanging, and a terminal error after retries surfaces as the right
exception type.

The companion distinction — the regression the gateway depends on — is
between *backpressure* (429: the service is up, wait as told) and
*unavailability* (connection refused: the host is down, never wait):
see :class:`TestUnavailable`.
"""

import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.serve import (
    BackpressureError,
    ServiceClient,
    ServiceError,
    ServiceUnavailableError,
)


class _ScriptedServer:
    """HTTP server answering POST /submit from a fixed response script.

    Script entries are ``(status, payload)`` or ``(status, payload,
    headers)`` — the third element sends extra response headers, which is
    how the Retry-After-header-only cases are scripted.
    """

    def __init__(self, script: list[tuple]) -> None:
        self.script = list(script)
        self.requests: list[float] = []  # monotonic arrival times
        outer = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt, *args):  # noqa: A003
                pass

            def do_POST(self):  # noqa: N802 - http.server API
                length = int(self.headers.get("Content-Length", 0))
                self.rfile.read(length)
                outer.requests.append(time.monotonic())
                entry = (outer.script.pop(0) if outer.script
                         else (500, {"error": "script exhausted"}))
                status, payload = entry[0], entry[1]
                headers = dict(entry[2]) if len(entry) > 2 else {}
                body = json.dumps(payload).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                if (status == 429 and "retry_after" in payload
                        and "Retry-After" not in headers):
                    headers["Retry-After"] = str(payload["retry_after"])
                for name, value in headers.items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(body)

        self._httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        daemon=True)

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address
        return f"http://{host}:{port}"

    def __enter__(self) -> "_ScriptedServer":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()


_BODY = {"kind": "tune", "input": "/tmp/x.npy", "target_ratio": 8.0}


class TestBackoff:
    def test_retry_after_delays_are_honoured(self):
        script = [
            (429, {"error": "queue full", "retry_after": 0.05}),
            (429, {"error": "queue full", "retry_after": 0.05}),
            (202, {"job_id": "j000001", "state": "queued",
                   "coalesced_into": None}),
        ]
        with _ScriptedServer(script) as server:
            client = ServiceClient(server.url, backpressure_wait=5.0)
            t0 = time.monotonic()
            ticket = client.submit(_BODY)
            elapsed = time.monotonic() - t0
            assert ticket["job_id"] == "j000001"
            assert len(server.requests) == 3
            # Two suggested 50 ms delays must both have been slept.
            assert elapsed >= 0.1
            gaps = [b - a for a, b in zip(server.requests, server.requests[1:])]
            assert all(gap >= 0.045 for gap in gaps)

    def test_deadline_expires_instead_of_hanging(self):
        # The server suggests a delay far beyond the client's budget: the
        # client must fail fast (before the suggested delay), not sleep it.
        script = [(429, {"error": "queue full", "retry_after": 30.0})]
        with _ScriptedServer(script) as server:
            client = ServiceClient(server.url, backpressure_wait=0.2)
            t0 = time.monotonic()
            with pytest.raises(BackpressureError) as exc:
                client.submit(_BODY)
            elapsed = time.monotonic() - t0
            assert elapsed < 2.0
            assert exc.value.status == 429
            assert len(server.requests) == 1

    def test_zero_budget_rejects_on_first_429(self):
        script = [(429, {"error": "queue full", "retry_after": 0.01})]
        with _ScriptedServer(script) as server:
            client = ServiceClient(server.url, backpressure_wait=0.0)
            with pytest.raises(BackpressureError):
                client.submit(_BODY)
            assert len(server.requests) == 1

    def test_terminal_error_after_retries_surfaces(self):
        # Backpressure first, then a hard 400: the client must raise the
        # protocol error (with its status), not keep retrying or hang.
        script = [
            (429, {"error": "queue full", "retry_after": 0.01}),
            (400, {"error": "unknown job spec fields: ['bogus']"}),
        ]
        with _ScriptedServer(script) as server:
            client = ServiceClient(server.url, backpressure_wait=5.0)
            with pytest.raises(ServiceError) as exc:
                client.submit(_BODY)
            assert not isinstance(exc.value, BackpressureError)
            assert exc.value.status == 400
            assert "bogus" in str(exc.value)
            assert len(server.requests) == 2

    def test_success_needs_no_retries(self):
        script = [(202, {"job_id": "j000009", "state": "queued",
                         "coalesced_into": None})]
        with _ScriptedServer(script) as server:
            client = ServiceClient(server.url)
            assert client.submit(_BODY)["job_id"] == "j000009"
            assert len(server.requests) == 1


class TestRetryAfterSurfacing:
    """Every raised error carries the server's suggested backoff uniformly.

    Regression tests for the ``retry_after`` attribute: the JSON
    ``retry_after`` field and the HTTP ``Retry-After`` header must both
    surface (field preferred when present), on 429, 503, and generic
    protocol errors alike — so a caller backing off after *any* failure
    never has to re-parse headers itself.
    """

    def test_backpressure_error_carries_json_field(self):
        script = [(429, {"error": "queue full", "retry_after": 7.5})]
        with _ScriptedServer(script) as server:
            client = ServiceClient(server.url, backpressure_wait=0.0)
            with pytest.raises(BackpressureError) as exc:
                client.submit(_BODY)
            assert exc.value.retry_after == 7.5

    def test_header_only_429_still_surfaces_and_is_honoured(self):
        # No JSON field at all: the Retry-After header alone must drive
        # both the retry sleep and the surfaced attribute.
        script = [
            (429, {"error": "queue full"}, {"Retry-After": "0.05"}),
            (202, {"job_id": "j000001", "state": "queued",
                   "coalesced_into": None}),
        ]
        with _ScriptedServer(script) as server:
            client = ServiceClient(server.url, backpressure_wait=5.0)
            t0 = time.monotonic()
            ticket = client.submit(_BODY)
            assert ticket["job_id"] == "j000001"
            assert time.monotonic() - t0 >= 0.045
            assert len(server.requests) == 2

    def test_json_field_wins_over_header(self):
        script = [(429, {"error": "queue full", "retry_after": 3.0},
                   {"Retry-After": "60"})]
        with _ScriptedServer(script) as server:
            client = ServiceClient(server.url, backpressure_wait=0.0)
            with pytest.raises(BackpressureError) as exc:
                client.submit(_BODY)
            assert exc.value.retry_after == 3.0

    def test_503_maps_to_unavailable_with_retry_after(self):
        # A gateway with no routable shard answers 503 + Retry-After:
        # that's "try me later", not backpressure — and not a sleep.
        script = [(503, {"error": "no routable worker node"},
                   {"Retry-After": "1"})]
        with _ScriptedServer(script) as server:
            client = ServiceClient(server.url, backpressure_wait=30.0)
            t0 = time.monotonic()
            with pytest.raises(ServiceUnavailableError) as exc:
                client.submit(_BODY)
            assert time.monotonic() - t0 < 2.0  # budget NOT spent on a 503
            assert exc.value.status == 503
            assert exc.value.retry_after == 1.0
            assert len(server.requests) == 1

    def test_503_without_hint_has_none(self):
        script = [(503, {"error": "unavailable"})]
        with _ScriptedServer(script) as server:
            with pytest.raises(ServiceUnavailableError) as exc:
                ServiceClient(server.url).submit(_BODY)
            assert exc.value.retry_after is None

    def test_generic_error_carries_retry_after_too(self):
        script = [(500, {"error": "briefly broken", "retry_after": 2.0})]
        with _ScriptedServer(script) as server:
            with pytest.raises(ServiceError) as exc:
                ServiceClient(server.url).submit(_BODY)
            assert exc.value.status == 500
            assert exc.value.retry_after == 2.0

    def test_malformed_header_degrades_to_none(self):
        # An HTTP-date Retry-After (or garbage) must not crash the client.
        script = [(503, {"error": "unavailable"},
                   {"Retry-After": "Wed, 21 Oct 2026 07:28:00 GMT"})]
        with _ScriptedServer(script) as server:
            with pytest.raises(ServiceUnavailableError) as exc:
                ServiceClient(server.url).submit(_BODY)
            assert exc.value.retry_after is None


def _refused_url() -> str:
    """A URL that deterministically refuses connections (nothing bound)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
    return f"http://127.0.0.1:{port}"


class TestUnavailable:
    """Connection refused is *not* backpressure — the node is down.

    Regression tests for the gateway's routing contract: a refused
    connection must raise :class:`ServiceUnavailableError` immediately
    (the gateway re-routes to another shard), never sleep a Retry-After
    that no live server suggested, and never masquerade as the 429 path.
    """

    def test_refused_connection_raises_immediately(self):
        client = ServiceClient(_refused_url(), backpressure_wait=30.0)
        t0 = time.monotonic()
        with pytest.raises(ServiceUnavailableError):
            client.submit(_BODY)
        # A large backpressure budget must NOT be spent on a dead host.
        assert time.monotonic() - t0 < 2.0

    def test_unavailable_is_a_service_error_but_not_backpressure(self):
        # Callers that catch ServiceError still see the failure; callers
        # that branch on the two subtypes can tell down from overloaded.
        with pytest.raises(ServiceError):
            ServiceClient(_refused_url()).submit(_BODY)
        with pytest.raises(ServiceUnavailableError) as exc:
            ServiceClient(_refused_url()).submit(_BODY)
        assert not isinstance(exc.value, BackpressureError)

    def test_429_still_takes_the_backpressure_path(self):
        # The flip side: a live-but-full server must keep raising
        # BackpressureError, not ServiceUnavailableError.
        script = [(429, {"error": "queue full", "retry_after": 0.01})]
        with _ScriptedServer(script) as server:
            client = ServiceClient(server.url, backpressure_wait=0.0)
            with pytest.raises(BackpressureError) as exc:
                client.submit(_BODY)
            assert not isinstance(exc.value, ServiceUnavailableError)

    def test_server_death_between_requests_is_unavailable(self):
        # First request succeeds; then the server goes away; the next
        # call must surface unavailability, not a protocol error.
        script = [(202, {"job_id": "j000001", "state": "queued",
                         "coalesced_into": None})]
        server = _ScriptedServer(script)
        with server:
            client = ServiceClient(server.url)
            client.submit(_BODY)
        with pytest.raises(ServiceUnavailableError):
            client.submit(_BODY)

    def test_other_endpoints_raise_unavailable_too(self):
        client = ServiceClient(_refused_url())
        with pytest.raises(ServiceUnavailableError):
            client.stats()
        with pytest.raises(ServiceUnavailableError):
            client.metrics_text()
        with pytest.raises(ServiceUnavailableError):
            client.poll_result("j000001")
