"""End-to-end trace trees on a single service node, over real HTTP.

The acceptance story: a tune job submitted through :class:`ServiceClient`
must leave one span tree behind — ``job`` → ``queue_wait``/``run`` →
``executor_dispatch`` → stage spans → per-iteration ``search_iteration``
spans carrying the bound/ratio the search actually tried — on **both**
executor backends (the process pool ships span context across the pickle
boundary).  Plus the sampling contract: ``--trace-sample 0`` keeps the
job correct but makes ``/trace`` 404, except for failed jobs, which
always leave a forced error root behind.
"""

import numpy as np
import pytest

from repro.serve import (
    JobFailedError,
    ServiceClient,
    ServiceError,
    ServiceServer,
)
from repro.obs.trace import TraceContext


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(7)
    return rng.standard_normal((24, 24)).cumsum(axis=0).astype(np.float32)


def _by_name(spans: list[dict]) -> dict[str, list[dict]]:
    out: dict[str, list[dict]] = {}
    for sp in spans:
        out.setdefault(sp["name"], []).append(sp)
    return out


class TestSpanTree:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_tune_job_yields_full_tree(self, field, executor):
        with ServiceServer(port=0, workers=1, executor=executor,
                           cache=False) as srv:
            client = ServiceClient(srv.url)
            ticket = client.submit_array(field, kind="tune",
                                         target_ratio=8.0, tolerance=0.15)
            client.result(ticket["job_id"], timeout=120)
            trace = client.trace(ticket["job_id"])

        assert trace["trace_id"] == ticket["trace_id"]
        assert trace["job_id"] == ticket["job_id"]
        assert trace["complete"] is True
        spans = trace["spans"]
        assert all(sp["trace_id"] == trace["trace_id"] for sp in spans)
        named = _by_name(spans)

        # The skeleton: lifecycle, queue, execution, stages.
        for required in ("job", "queue_wait", "run", "executor_dispatch",
                         "search"):
            assert required in named, f"missing {required!r}: {sorted(named)}"

        [job] = named["job"]
        assert job["parent_id"] is None
        assert job["attrs"]["job_id"] == ticket["job_id"]
        assert job["attrs"]["kind"] == "tune"

        # Search-iteration visibility: every probe the binary search made
        # is one child span of `search` tagged with what it tried.
        iters = named.get("search_iteration", [])
        assert len(iters) >= 1, sorted(named)
        [search] = named["search"]
        for it in iters:
            assert it["parent_id"] == search["span_id"]
            assert it["attrs"]["bound"] > 0
            assert "ratio" in it["attrs"]
            assert it["attrs"]["iteration"] >= 0
        iterations = [it["attrs"]["iteration"] for it in iters]
        assert iterations == sorted(iterations)
        bounds = [it["attrs"]["bound"] for it in iters]
        assert len(set(bounds)) == len(bounds), "iterations repeat a bound"

        # Parentage: queue_wait and run hang off the job root; the
        # dispatch span is run's child (and carries the backend used).
        [queue_wait] = named["queue_wait"]
        [run] = named["run"]
        assert queue_wait["parent_id"] == job["span_id"]
        assert run["parent_id"] == job["span_id"]
        [dispatch] = named["executor_dispatch"]
        assert dispatch["parent_id"] == run["span_id"]
        assert dispatch["attrs"]["backend"] == executor

    def test_trace_addressable_by_raw_trace_id(self, field):
        with ServiceServer(port=0, workers=1, cache=False) as srv:
            client = ServiceClient(srv.url)
            ticket = client.submit_array(field, kind="tune", target_ratio=8.0)
            client.result(ticket["job_id"], timeout=120)
            by_job = client.trace(ticket["job_id"])
            by_trace = client.trace(ticket["trace_id"])
        assert by_trace["trace_id"] == by_job["trace_id"]
        assert {s["span_id"] for s in by_trace["spans"]} == \
            {s["span_id"] for s in by_job["spans"]}

    def test_status_carries_trace_id(self, field):
        with ServiceServer(port=0, workers=1, cache=False) as srv:
            client = ServiceClient(srv.url)
            ticket = client.submit_array(field, kind="tune", target_ratio=8.0)
            client.result(ticket["job_id"], timeout=120)
            status = client.status(ticket["job_id"])
        assert status["trace_id"] == ticket["trace_id"]

    def test_caller_traceparent_continues_the_trace(self, field):
        # A caller-minted context (sampled) must become the trace the
        # node records under — the job root is a *child* of the caller.
        ctx = TraceContext("ab" * 16, "cd" * 8, sampled=True)
        with ServiceServer(port=0, workers=1, cache=False) as srv:
            client = ServiceClient(srv.url)
            ticket = client.submit_array(
                field, kind="tune", target_ratio=8.0,
                traceparent=ctx.to_traceparent())
            client.result(ticket["job_id"], timeout=120)
            trace = client.trace(ticket["job_id"])
        assert ticket["trace_id"] == ctx.trace_id
        assert trace["trace_id"] == ctx.trace_id
        [job] = [s for s in trace["spans"] if s["name"] == "job"]
        assert job["parent_id"] == ctx.span_id


class TestSampling:
    def test_sample_zero_job_succeeds_but_trace_404s(self, field):
        with ServiceServer(port=0, workers=1, cache=False,
                           trace_sample=0.0) as srv:
            client = ServiceClient(srv.url)
            ticket = client.submit_array(field, kind="tune", target_ratio=8.0)
            result = client.result(ticket["job_id"], timeout=120)
            assert result["kind"] == "tune"
            # The id still exists (it propagated downstream unsampled)...
            assert len(ticket["trace_id"]) == 32
            # ...but no spans were recorded, so the tree is gone.
            with pytest.raises(ServiceError) as exc:
                client.trace(ticket["job_id"])
            assert exc.value.status == 404
            assert srv.scheduler.tracer.stats_dict()["sampled"] == 0

    def test_failed_job_is_always_sampled(self, field, tmp_path):
        # Head sampling said no, but the job failed: the forced error
        # root must still be retrievable so failures are never invisible.
        with ServiceServer(port=0, workers=1, cache=False,
                           trace_sample=0.0) as srv:
            client = ServiceClient(srv.url)
            ticket = client.submit(kind="tune", target_ratio=8.0,
                                   input=str(tmp_path / "missing.npy"),
                                   max_retries=0)
            with pytest.raises(JobFailedError):
                client.result(ticket["job_id"], timeout=120)
            trace = client.trace(ticket["job_id"])
        [root] = trace["spans"]
        assert root["status"] == "error"
        assert "FileNotFoundError" in root["error"]
        assert root["attrs"]["forced_sample"] is True

    def test_unsampled_caller_context_suppresses_recording(self, field):
        # sampled=0 from the caller wins over the node's sample_rate=1:
        # the head decision is made exactly once, upstream.
        ctx = TraceContext("ef" * 16, "cd" * 8, sampled=False)
        with ServiceServer(port=0, workers=1, cache=False) as srv:
            client = ServiceClient(srv.url)
            ticket = client.submit_array(
                field, kind="tune", target_ratio=8.0,
                traceparent=ctx.to_traceparent())
            client.result(ticket["job_id"], timeout=120)
            assert ticket["trace_id"] == ctx.trace_id
            with pytest.raises(ServiceError) as exc:
                client.trace(ticket["job_id"])
            assert exc.value.status == 404


class TestStatsAndExemplars:
    def test_stats_expose_trace_section_with_exemplars(self, field):
        with ServiceServer(port=0, workers=1, cache=False) as srv:
            client = ServiceClient(srv.url)
            ticket = client.submit_array(field, kind="tune", target_ratio=8.0)
            client.result(ticket["job_id"], timeout=120)
            trace_stats = client.stats()["trace"]
        assert trace_stats["sampled"] >= 1
        assert trace_stats["sample_rate"] == 1.0
        exemplar_jobs = [e["job_id"] for e in trace_stats["exemplars"]]
        assert ticket["job_id"] in exemplar_jobs

    def test_health_reports_version(self):
        from repro import __version__

        with ServiceServer(port=0, workers=1, cache=False) as srv:
            health = ServiceClient(srv.url).health()
        assert health["version"] == __version__
