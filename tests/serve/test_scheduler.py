"""Scheduler behaviour: execution, coalescing, retries, routing, stats."""

import numpy as np
import pytest

from repro.core.fraz import FRaZ
from repro.io.files import load_field, read_info
from repro.serve.jobs import JobSpec, JobState
from repro.serve.queue import QueueFull
from repro.serve.scheduler import Scheduler


@pytest.fixture(scope="module")
def field():
    r = np.random.default_rng(11)
    return r.standard_normal((24, 24)).cumsum(axis=0).astype(np.float32)


@pytest.fixture(scope="module")
def field_b64(field):
    return JobSpec.encode_array(field)


def tune_dict(field_b64, **over):
    base = dict(kind="tune", target_ratio=8.0, tolerance=0.15, data_b64=field_b64)
    base.update(over)
    return base


@pytest.fixture()
def sched():
    s = Scheduler(workers=2, queue_size=16).start()
    yield s
    s.stop()


class TestExecution:
    def test_tune_matches_direct_fraz(self, sched, field, field_b64):
        job = sched.submit(tune_dict(field_b64))
        sched.wait(job.id, timeout=60)
        assert job.state is JobState.DONE
        direct = FRaZ(compressor="sz", target_ratio=8.0, tolerance=0.15).tune(field)
        assert job.result["error_bound"] == direct.error_bound
        assert job.result["ratio"] == direct.ratio
        assert job.result["kind"] == "tune"

    def test_compress_fixed_bound_writes_frz(self, sched, field, field_b64, tmp_path):
        out = tmp_path / "fixed.frz"
        job = sched.submit({"kind": "compress", "error_bound": 1e-2,
                            "data_b64": field_b64, "output": str(out)})
        sched.wait(job.id, timeout=60)
        assert job.state is JobState.DONE
        assert job.result["streamed"] is False
        recon, meta = load_field(out)
        assert meta["compressor"] == "sz"
        assert np.abs(recon.astype(np.float64) - field.astype(np.float64)).max() <= 1e-2

    def test_compress_tuned_records_target(self, sched, field_b64, tmp_path):
        out = tmp_path / "tuned.frz"
        job = sched.submit({"kind": "compress", "target_ratio": 8.0,
                            "tolerance": 0.15, "data_b64": field_b64,
                            "output": str(out)})
        sched.wait(job.id, timeout=60)
        assert job.state is JobState.DONE
        assert job.result["tuning"]["kind"] == "tune"
        meta = read_info(out)
        assert meta["user"]["target_ratio"] == 8.0

    def test_path_input(self, sched, field, tmp_path):
        path = tmp_path / "f.npy"
        np.save(path, field)
        job = sched.submit({"kind": "tune", "target_ratio": 8.0,
                            "tolerance": 0.15, "input": str(path)})
        sched.wait(job.id, timeout=60)
        assert job.state is JobState.DONE
        assert job.result["input"] == str(path)

    def test_sequential_duplicates_answered_by_cache(self, field_b64):
        with Scheduler(workers=1) as s:
            first = s.submit(tune_dict(field_b64))
            s.wait(first.id, timeout=60)
            second = s.submit(tune_dict(field_b64))
            s.wait(second.id, timeout=60)
            # Not concurrent, so no coalescing — but the shared EvalCache
            # answers every probe of the rerun.
            assert second.coalesced_into is None
            assert second.result["compressor_calls"] == 0
            assert s.stats.coalesced == 0


class TestCoalescing:
    def test_concurrent_duplicates_computed_once(self, field_b64):
        with Scheduler(workers=2, paused=True) as s:
            jobs = [s.submit(tune_dict(field_b64)) for _ in range(6)]
            primary, followers = jobs[0], jobs[1:]
            assert all(j.coalesced_into == primary.id for j in followers)
            assert s.stats.coalesced == 5
            assert len(s._queue) == 1  # followers consume no queue capacity
            s.resume()
            for j in jobs:
                s.wait(j.id, timeout=60)
            assert all(j.state is JobState.DONE for j in jobs)
            bounds = {j.result["error_bound"] for j in jobs}
            assert len(bounds) == 1
            # One search paid for all six requests.
            assert s.stats.evaluations == jobs[0].result["evaluations"]

    def test_different_specs_do_not_coalesce(self, field_b64):
        with Scheduler(workers=2, paused=True) as s:
            a = s.submit(tune_dict(field_b64))
            b = s.submit(tune_dict(field_b64, target_ratio=6.0))
            assert b.coalesced_into is None
            assert s.stats.coalesced == 0
            s.resume()
            s.wait(a.id, timeout=60)
            s.wait(b.id, timeout=60)

    def test_coalesced_burst_does_not_trip_backpressure(self, field_b64):
        with Scheduler(workers=1, queue_size=2, paused=True) as s:
            for _ in range(10):  # 1 queued + 9 coalesced, bound is 2
                s.submit(tune_dict(field_b64))
            assert s.stats.coalesced == 9
            s.resume()
            s.drain(timeout=60)


class TestFailureAndRetry:
    def test_retry_budget_exhausted(self, tmp_path):
        with Scheduler(workers=1) as s:
            job = s.submit({"kind": "tune", "target_ratio": 8.0,
                            "input": str(tmp_path / "missing.npy"),
                            "max_retries": 2})
            s.wait(job.id, timeout=60)
            assert job.state is JobState.FAILED
            assert job.attempts == 3  # 1 initial + 2 retries
            assert "FileNotFoundError" in job.error
            assert s.stats.retried == 2
            assert s.stats.failed == 1

    def test_no_retries_when_budget_zero(self, tmp_path):
        with Scheduler(workers=1) as s:
            job = s.submit({"kind": "tune", "target_ratio": 8.0,
                            "input": str(tmp_path / "missing.npy"),
                            "max_retries": 0})
            s.wait(job.id, timeout=60)
            assert job.state is JobState.FAILED
            assert job.attempts == 1

    def test_failure_fans_to_coalesced_followers(self, tmp_path):
        with Scheduler(workers=1, paused=True) as s:
            bad = {"kind": "tune", "target_ratio": 8.0,
                   "input": str(tmp_path / "missing.npy"), "max_retries": 0}
            a = s.submit(bad)
            b = s.submit(bad)
            assert b.coalesced_into == a.id
            s.resume()
            s.wait(a.id, timeout=60)
            s.wait(b.id, timeout=60)
            assert a.state is JobState.FAILED and b.state is JobState.FAILED
            assert a.error == b.error


class TestCancellation:
    def test_cancel_queued_job(self, field_b64):
        with Scheduler(workers=1, paused=True) as s:
            job = s.submit(tune_dict(field_b64))
            assert s.cancel(job.id)
            assert job.state is JobState.CANCELLED
            assert not s.cancel(job.id)  # already finished
            s.resume()
            s.drain(timeout=10)
            assert s.stats.cancelled == 1
            assert s.stats.completed == 0

    def test_cancel_primary_cancels_followers(self, field_b64):
        with Scheduler(workers=1, paused=True) as s:
            a = s.submit(tune_dict(field_b64))
            b = s.submit(tune_dict(field_b64))
            assert s.cancel(a.id)
            assert b.state is JobState.CANCELLED
            # A fresh identical submit is a new primary, not a follower of
            # the cancelled job.
            c = s.submit(tune_dict(field_b64))
            assert c.coalesced_into is None

    def test_cancel_unknown_id(self, sched):
        assert not sched.cancel("j-nope")


class TestStreamRouting:
    def test_large_file_streams(self, tmp_path):
        r = np.random.default_rng(5)
        data = r.standard_normal((64, 64)).cumsum(axis=0).astype(np.float32)
        src = tmp_path / "big.npy"
        np.save(src, data)
        out = tmp_path / "big.frzs"
        with Scheduler(workers=1, stream_threshold=1024) as s:
            job = s.submit({"kind": "compress", "error_bound": 1e-2,
                            "input": str(src), "output": str(out)})
            s.wait(job.id, timeout=120)
            assert job.state is JobState.DONE
            assert job.result["streamed"] is True
            assert job.result["n_chunks"] >= 1
            assert s.stats.streamed == 1
        from repro.stream import stream_decompress

        recon = stream_decompress(out)
        assert np.abs(recon.astype(np.float64) - data.astype(np.float64)).max() <= 1e-2

    def test_spec_can_forbid_streaming(self, tmp_path):
        data = np.random.default_rng(6).standard_normal((32, 32)).astype(np.float32)
        src = tmp_path / "f.npy"
        np.save(src, data)
        out = tmp_path / "f.frz"
        with Scheduler(workers=1, stream_threshold=1) as s:
            job = s.submit({"kind": "compress", "error_bound": 1e-2,
                            "input": str(src), "output": str(out),
                            "stream": False})
            s.wait(job.id, timeout=60)
            assert job.result["streamed"] is False


class TestBackpressureAndStats:
    def test_queue_full_propagates(self, field_b64):
        with Scheduler(workers=1, queue_size=1, paused=True) as s:
            s.submit(tune_dict(field_b64))
            with pytest.raises(QueueFull):
                s.submit(tune_dict(field_b64, target_ratio=5.0))

    def test_priorities_order_execution(self, field_b64):
        with Scheduler(workers=1, paused=True) as s:
            low = s.submit(tune_dict(field_b64, target_ratio=5.0, priority=10))
            high = s.submit(tune_dict(field_b64, target_ratio=6.0, priority=-10))
            s.resume()
            s.wait(low.id, timeout=60)
            s.wait(high.id, timeout=60)
            assert high.finished_at <= low.finished_at

    def test_stats_payload_shape(self, sched, field_b64):
        job = sched.submit(tune_dict(field_b64, target_ratio=7.0))
        sched.wait(job.id, timeout=60)
        payload = sched.stats_payload()
        for section in ("queue", "jobs", "search", "cache"):
            assert section in payload
        assert payload["jobs"]["submitted"] >= 1
        assert payload["search"]["evaluations"] >= 1
        assert payload["cache"]["entries"] >= 1
        import json

        json.dumps(payload)

    def test_history_bounded(self, field_b64):
        with Scheduler(workers=1, history=4) as s:
            first = s.submit(tune_dict(field_b64))
            s.wait(first.id, timeout=60)
            for ratio in (3.0, 4.0, 5.0, 6.0, 7.0):
                j = s.submit(tune_dict(field_b64, target_ratio=ratio))
                s.wait(j.id, timeout=60)
            assert s.get(first.id) is None  # pruned
            assert s.get(j.id) is not None

    def test_wait_unknown_job(self, sched):
        with pytest.raises(KeyError):
            sched.wait("j-nope")
