"""``GET /metrics`` end-to-end: well-formed exposition, consistent with
``/stats``, stage histograms populated, and clean disablement."""

import numpy as np
import pytest

from repro.obs.exposition import parse_prometheus
from repro.serve import Scheduler, ServiceClient, ServiceServer


@pytest.fixture(scope="module")
def field():
    r = np.random.default_rng(31)
    return r.standard_normal((24, 24)).cumsum(axis=0).astype(np.float32)


@pytest.fixture()
def server():
    with ServiceServer(port=0, workers=2, executor="thread") as srv:
        yield srv


def _run_some_jobs(server, field, n=3):
    client = ServiceClient(server.url)
    for i in range(n):
        ticket = client.submit_array(field + np.float32(i), kind="tune",
                                     target_ratio=8.0, tolerance=0.2)
        client.result(ticket["job_id"], timeout=120)
    return client


class TestMetricsEndpoint:
    def test_exposition_parses_and_is_typed(self, server, field):
        client = _run_some_jobs(server, field, n=1)
        samples = client.metrics()  # parse_prometheus raises on malformed text
        declared = {s.name: s.labels["type"] for s in samples["__types__"]}
        assert declared["repro_jobs_completed_total"] == "counter"
        assert declared["repro_queue_depth"] == "gauge"
        assert declared["repro_stage_seconds"] == "histogram"
        assert declared["repro_job_seconds"] == "histogram"

    def test_counters_match_stats(self, server, field):
        client = _run_some_jobs(server, field, n=3)
        samples = client.metrics()
        stats = client.stats()
        assert samples["repro_jobs_submitted_total"][0].value == \
            stats["jobs"]["submitted"]
        assert samples["repro_jobs_completed_total"][0].value == \
            stats["jobs"]["completed"]
        assert samples["repro_search_evaluations_total"][0].value == \
            stats["search"]["evaluations"]

    def test_stage_histograms_populated(self, server, field):
        client = _run_some_jobs(server, field, n=2)
        samples = client.metrics()
        counts = {s.labels["stage"]: s.value
                  for s in samples["repro_stage_seconds_count"]}
        assert counts["queue_wait"] == 2
        assert counts["run"] == 2
        assert counts["search"] == 2  # tunes time the FRaZ search
        kinds = {s.labels["kind"]: s.value
                 for s in samples["repro_job_seconds_count"]}
        assert kinds["tune"] == 2

    def test_bucket_series_cumulative_with_inf(self, server, field):
        client = _run_some_jobs(server, field, n=1)
        samples = client.metrics()
        runs = [s for s in samples["repro_stage_seconds_bucket"]
                if s.labels["stage"] == "run"]
        values = [s.value for s in runs]
        assert values == sorted(values)
        assert runs[-1].labels["le"] == "+Inf"
        count = [s for s in samples["repro_stage_seconds_count"]
                 if s.labels["stage"] == "run"][0]
        assert runs[-1].value == count.value

    def test_stats_metrics_section_matches_endpoint(self, server, field):
        client = _run_some_jobs(server, field, n=1)
        section = client.stats()["metrics"]
        samples = client.metrics()
        assert section["repro_jobs_completed_total"] == \
            samples["repro_jobs_completed_total"][0].value
        run = section['repro_stage_seconds{stage="run"}']
        assert run["count"] >= 1
        assert run["p50"] is not None
        assert run["p50"] <= run["p99"]

    def test_content_type(self, server):
        import urllib.request

        with urllib.request.urlopen(server.url + "/metrics", timeout=5) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            assert "version=0.0.4" in resp.headers["Content-Type"]


class TestMetricsDisabled:
    def test_endpoint_404s_and_stats_omits_section(self):
        with ServiceServer(port=0, workers=1, executor="thread",
                           metrics=False) as srv:
            client = ServiceClient(srv.url)
            from repro.serve import ServiceError

            with pytest.raises(ServiceError) as exc:
                client.metrics_text()
            assert exc.value.status == 404
            assert client.stats()["metrics"] is None

    def test_scheduler_metrics_text_raises(self):
        sched = Scheduler(workers=1, executor="thread", metrics=False)
        with pytest.raises(RuntimeError):
            sched.metrics_text()

    def test_shared_registry_instance(self):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        sched = Scheduler(workers=1, executor="thread", metrics=reg)
        assert sched.metrics is reg
        assert reg.get("queue_depth") is not None
