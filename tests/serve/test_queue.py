"""JobQueue ordering, backpressure, and lazy cancellation."""

import threading

import numpy as np
import pytest

from repro.serve.jobs import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    Job,
    JobSpec,
    JobState,
)
from repro.serve.queue import JobQueue, QueueFull

_B64 = JobSpec.encode_array(np.zeros(4, dtype=np.float32))


def make_job(jid: str, priority: int = PRIORITY_NORMAL) -> Job:
    spec = JobSpec(kind="tune", target_ratio=8.0, data_b64=_B64, priority=priority)
    return Job(id=jid, spec=spec)


class TestOrdering:
    def test_fifo_within_priority(self):
        q = JobQueue(maxsize=8)
        for i in range(4):
            q.put(make_job(f"j{i}"))
        assert [q.get(0).id for _ in range(4)] == ["j0", "j1", "j2", "j3"]

    def test_priority_order(self):
        q = JobQueue(maxsize=8)
        q.put(make_job("low", PRIORITY_LOW))
        q.put(make_job("normal", PRIORITY_NORMAL))
        q.put(make_job("high", PRIORITY_HIGH))
        assert [q.get(0).id for _ in range(3)] == ["high", "normal", "low"]

    def test_get_timeout_returns_none(self):
        q = JobQueue(maxsize=2)
        assert q.get(timeout=0.01) is None

    def test_get_wakes_on_put(self):
        q = JobQueue(maxsize=2)
        got = []

        def consumer():
            got.append(q.get(timeout=5.0))

        t = threading.Thread(target=consumer)
        t.start()
        q.put(make_job("j1"))
        t.join(5.0)
        assert got and got[0].id == "j1"


class TestBackpressure:
    def test_put_raises_at_capacity(self):
        q = JobQueue(maxsize=2)
        q.put(make_job("a"))
        q.put(make_job("b"))
        with pytest.raises(QueueFull) as exc:
            q.put(make_job("c"))
        assert exc.value.retry_after > 0
        assert q.stats.rejected == 1

    def test_force_put_bypasses_bound(self):
        q = JobQueue(maxsize=1)
        q.put(make_job("a"))
        q.put(make_job("retry"), force=True)
        assert len(q) == 2

    def test_capacity_frees_on_get(self):
        q = JobQueue(maxsize=1)
        q.put(make_job("a"))
        assert q.get(0).id == "a"
        q.put(make_job("b"))  # must not raise

    def test_bad_maxsize(self):
        with pytest.raises(ValueError):
            JobQueue(maxsize=0)


def cancel(q: JobQueue, job: Job) -> bool:
    """Cancel as the scheduler does: flip state, then notify the queue."""
    job.state = JobState.CANCELLED
    return q.cancelled(job)


class TestCancellation:
    def test_cancelled_jobs_skipped(self):
        q = JobQueue(maxsize=4)
        a, b = make_job("a"), make_job("b")
        q.put(a)
        q.put(b)
        assert cancel(q, a)
        assert len(q) == 1
        assert q.get(0).id == "b"
        assert q.get(0.01) is None

    def test_cancelled_frees_capacity(self):
        q = JobQueue(maxsize=1)
        a = make_job("a")
        q.put(a)
        assert cancel(q, a)
        q.put(make_job("b"))  # must not raise

    def test_unnotified_cancel_still_skipped_at_pop(self):
        # Belt and braces: a job whose state flipped without the scheduler
        # notifying the queue is never *returned*, even though the depth
        # counter only learns about it at pop time.
        q = JobQueue(maxsize=4)
        a, b = make_job("a"), make_job("b")
        q.put(a)
        q.put(b)
        a.state = JobState.CANCELLED
        assert q.get(0).id == "b"
        assert q.get(0.01) is None

    def test_cancel_of_popped_job_is_noop(self):
        q = JobQueue(maxsize=4)
        a = make_job("a")
        q.put(a)
        assert q.get(0) is a
        a.state = JobState.CANCELLED
        assert not q.cancelled(a)  # already popped: counters untouched
        assert len(q) == 0

    def test_cancel_storm_compacts_heap(self):
        """10x maxsize enqueued by force, 90% cancelled: the heap must
        compact instead of retaining every dead entry, and the reported
        depth must stay exact."""
        q = JobQueue(maxsize=8)
        jobs = [make_job(f"j{i:03d}") for i in range(80)]
        for j in jobs:
            q.put(j, force=True)
        assert q.heap_size() == 80
        victims, survivors = jobs[:72], jobs[72:]
        for j in victims:
            assert cancel(q, j)
        assert len(q) == len(survivors) == 8
        # Compaction bound: never more than live + the not-yet-compacted
        # tail (at most half the heap, and at most maxsize over the live).
        assert q.heap_size() <= 2 * (len(q) + q.maxsize)
        assert q.stats.compactions >= 1
        assert q.stats.cancelled == 72
        # Survivors drain in FIFO order, none of the victims leak out.
        drained = [q.get(0).id for _ in range(len(survivors))]
        assert drained == [j.id for j in survivors]
        assert q.get(0.01) is None
        assert q.heap_size() == 0

    def test_cancel_heavy_producer_has_bounded_heap(self):
        """Sustained churn: repeated enqueue-then-cancel rounds must not
        grow the heap without bound behind a small reported depth."""
        q = JobQueue(maxsize=4)
        peak = 0
        for rnd in range(50):
            batch = [make_job(f"r{rnd}-{i}") for i in range(8)]
            for j in batch:
                q.put(j, force=True)
            for j in batch:
                assert cancel(q, j)
            peak = max(peak, q.heap_size())
        assert len(q) == 0
        assert peak <= 8 + q.maxsize  # one batch plus the compaction lag
        assert q.heap_size() <= q.maxsize
        assert q.stats.compactions >= 50

    def test_depth_is_counter_not_scan(self):
        # put() must stay O(1): the depth used for admission is a live
        # counter, never a heap scan.
        q = JobQueue(maxsize=4)
        jobs = [make_job(f"j{i}") for i in range(4)]
        for j in jobs:
            q.put(j)
        with pytest.raises(QueueFull):
            q.put(make_job("over"))
        assert cancel(q, jobs[0])
        q.put(make_job("fits"))  # freed capacity visible immediately


class TestStats:
    def test_counters(self):
        q = JobQueue(maxsize=2)
        q.put(make_job("a"))
        q.put(make_job("b"))
        with pytest.raises(QueueFull):
            q.put(make_job("c"))
        stats = q.stats_dict()
        assert stats["enqueued"] == 2
        assert stats["rejected"] == 1
        assert stats["max_depth"] == 2
        assert stats["depth"] == 2
        assert stats["capacity"] == 2
