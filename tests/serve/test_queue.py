"""JobQueue ordering, backpressure, and lazy cancellation."""

import threading

import numpy as np
import pytest

from repro.serve.jobs import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    Job,
    JobSpec,
    JobState,
)
from repro.serve.queue import JobQueue, QueueFull

_B64 = JobSpec.encode_array(np.zeros(4, dtype=np.float32))


def make_job(jid: str, priority: int = PRIORITY_NORMAL) -> Job:
    spec = JobSpec(kind="tune", target_ratio=8.0, data_b64=_B64, priority=priority)
    return Job(id=jid, spec=spec)


class TestOrdering:
    def test_fifo_within_priority(self):
        q = JobQueue(maxsize=8)
        for i in range(4):
            q.put(make_job(f"j{i}"))
        assert [q.get(0).id for _ in range(4)] == ["j0", "j1", "j2", "j3"]

    def test_priority_order(self):
        q = JobQueue(maxsize=8)
        q.put(make_job("low", PRIORITY_LOW))
        q.put(make_job("normal", PRIORITY_NORMAL))
        q.put(make_job("high", PRIORITY_HIGH))
        assert [q.get(0).id for _ in range(3)] == ["high", "normal", "low"]

    def test_get_timeout_returns_none(self):
        q = JobQueue(maxsize=2)
        assert q.get(timeout=0.01) is None

    def test_get_wakes_on_put(self):
        q = JobQueue(maxsize=2)
        got = []

        def consumer():
            got.append(q.get(timeout=5.0))

        t = threading.Thread(target=consumer)
        t.start()
        q.put(make_job("j1"))
        t.join(5.0)
        assert got and got[0].id == "j1"


class TestBackpressure:
    def test_put_raises_at_capacity(self):
        q = JobQueue(maxsize=2)
        q.put(make_job("a"))
        q.put(make_job("b"))
        with pytest.raises(QueueFull) as exc:
            q.put(make_job("c"))
        assert exc.value.retry_after > 0
        assert q.stats.rejected == 1

    def test_force_put_bypasses_bound(self):
        q = JobQueue(maxsize=1)
        q.put(make_job("a"))
        q.put(make_job("retry"), force=True)
        assert len(q) == 2

    def test_capacity_frees_on_get(self):
        q = JobQueue(maxsize=1)
        q.put(make_job("a"))
        assert q.get(0).id == "a"
        q.put(make_job("b"))  # must not raise

    def test_bad_maxsize(self):
        with pytest.raises(ValueError):
            JobQueue(maxsize=0)


class TestCancellation:
    def test_cancelled_jobs_skipped(self):
        q = JobQueue(maxsize=4)
        a, b = make_job("a"), make_job("b")
        q.put(a)
        q.put(b)
        a.state = JobState.CANCELLED
        assert len(q) == 1
        assert q.get(0).id == "b"
        assert q.get(0.01) is None

    def test_cancelled_frees_capacity(self):
        q = JobQueue(maxsize=1)
        a = make_job("a")
        q.put(a)
        a.state = JobState.CANCELLED
        q.put(make_job("b"))  # must not raise


class TestStats:
    def test_counters(self):
        q = JobQueue(maxsize=2)
        q.put(make_job("a"))
        q.put(make_job("b"))
        with pytest.raises(QueueFull):
            q.put(make_job("c"))
        stats = q.stats_dict()
        assert stats["enqueued"] == 2
        assert stats["rejected"] == 1
        assert stats["max_depth"] == 2
        assert stats["depth"] == 2
        assert stats["capacity"] == 2
