"""JobSpec validation, wire format, and coalesce-key identity."""

import numpy as np
import pytest

from repro.serve.jobs import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    Job,
    JobSpec,
    JobState,
)


@pytest.fixture()
def data():
    return np.random.default_rng(7).standard_normal((8, 8)).astype(np.float32)


def tune_spec(data, **over):
    base = dict(kind="tune", target_ratio=8.0, data_b64=JobSpec.encode_array(data))
    base.update(over)
    return JobSpec(**base)


class TestValidation:
    def test_bad_kind(self, data):
        with pytest.raises(ValueError, match="kind"):
            tune_spec(data, kind="frobnicate")

    def test_requires_exactly_one_data_source(self, data):
        with pytest.raises(ValueError, match="exactly one"):
            tune_spec(data, input="also.npy")
        with pytest.raises(ValueError, match="exactly one"):
            JobSpec(kind="tune", target_ratio=8.0)

    def test_tune_requires_target(self, data):
        with pytest.raises(ValueError, match="target_ratio"):
            JobSpec(kind="tune", data_b64=JobSpec.encode_array(data))

    def test_tune_rejects_error_bound(self, data):
        with pytest.raises(ValueError, match="not error_bound"):
            tune_spec(data, error_bound=1e-3)

    def test_compress_requires_output(self, data):
        with pytest.raises(ValueError, match="output"):
            JobSpec(kind="compress", error_bound=1e-3,
                    data_b64=JobSpec.encode_array(data))

    def test_compress_requires_one_objective(self, data):
        b64 = JobSpec.encode_array(data)
        with pytest.raises(ValueError, match="exactly one"):
            JobSpec(kind="compress", data_b64=b64, output="o.frz")
        with pytest.raises(ValueError, match="exactly one"):
            JobSpec(kind="compress", data_b64=b64, output="o.frz",
                    target_ratio=8.0, error_bound=1e-3)

    def test_bad_tolerance_priority_retries(self, data):
        with pytest.raises(ValueError, match="tolerance"):
            tune_spec(data, tolerance=0.0)
        with pytest.raises(ValueError, match="priority"):
            tune_spec(data, priority="soon")
        with pytest.raises(ValueError, match="max_retries"):
            tune_spec(data, max_retries=-1)

    def test_stream_requires_path(self, data):
        with pytest.raises(ValueError, match="stream"):
            tune_spec(data, stream=True)


class TestWireFormat:
    def test_round_trip(self, data):
        spec = tune_spec(data, priority=PRIORITY_LOW, max_retries=2)
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_from_dict_rejects_unknown_keys(self, data):
        payload = tune_spec(data).to_dict()
        payload["frobnicate"] = 1
        with pytest.raises(ValueError, match="unknown job spec fields"):
            JobSpec.from_dict(payload)

    def test_from_dict_requires_kind(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec.from_dict({"target_ratio": 8.0, "input": "x.npy"})

    def test_named_priorities(self, data):
        payload = tune_spec(data).to_dict()
        payload["priority"] = "HIGH"
        assert JobSpec.from_dict(payload).priority == PRIORITY_HIGH
        payload["priority"] = "sometime"
        with pytest.raises(ValueError, match="priority"):
            JobSpec.from_dict(payload)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            JobSpec.from_dict([1, 2, 3])

    def test_inline_array_round_trip(self, data):
        spec = tune_spec(data)
        np.testing.assert_array_equal(spec.load_array(), data)


class TestCoalesceKey:
    def test_identical_specs_share_a_key(self, data):
        assert tune_spec(data).coalesce_key() == tune_spec(data).coalesce_key()

    def test_scheduling_hints_do_not_split_keys(self, data):
        a = tune_spec(data, priority=PRIORITY_HIGH, max_retries=0)
        b = tune_spec(data, priority=PRIORITY_LOW, max_retries=3)
        assert a.coalesce_key() == b.coalesce_key()

    def test_work_defining_fields_split_keys(self, data):
        base = tune_spec(data)
        assert base.coalesce_key() != tune_spec(data, target_ratio=9.0).coalesce_key()
        assert base.coalesce_key() != tune_spec(data, compressor="zfp").coalesce_key()
        assert base.coalesce_key() != tune_spec(data, tolerance=0.2).coalesce_key()

    def test_different_data_splits_keys(self, data):
        other = data + 1.0
        assert tune_spec(data).coalesce_key() != tune_spec(other).coalesce_key()

    def test_path_token_tracks_file_changes(self, tmp_path, data):
        path = tmp_path / "f.npy"
        np.save(path, data)
        spec = JobSpec(kind="tune", target_ratio=8.0, input=str(path))
        before = spec.coalesce_key()
        assert before == JobSpec(kind="tune", target_ratio=8.0, input=str(path)).coalesce_key()
        import os

        np.save(path, data + 1.0)
        os.utime(path, ns=(1, 1))  # force a distinct mtime even on coarse clocks
        assert spec.coalesce_key() != before


class TestJobRecord:
    def test_lifecycle_and_wait(self, data):
        job = Job(id="j1", spec=tune_spec(data))
        assert job.state is JobState.QUEUED and not job.finished
        assert not job.wait(0.01)
        job._finish(JobState.DONE, result={"ok": True})
        assert job.finished and job.wait(0.01)
        assert job.status_dict()["state"] == "done"

    def test_status_dict_is_json_ready(self, data):
        import json

        job = Job(id="j1", spec=tune_spec(data))
        json.dumps(job.status_dict())
