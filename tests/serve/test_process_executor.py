"""Process execution backend: dispatch, crash recovery, tombstones, spill.

These tests force ``executor="process"`` regardless of core count so the
pool path is exercised on single-core CI hosts too (``"auto"`` would pick
threads there).
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.fraz import FRaZ
from repro.serve import ServiceClient, ServiceServer
from repro.serve.jobs import JobSpec, JobState
from repro.serve.scheduler import Scheduler, resolve_executor_mode


@pytest.fixture(scope="module")
def field():
    r = np.random.default_rng(11)
    return r.standard_normal((24, 24)).cumsum(axis=0).astype(np.float32)


@pytest.fixture(scope="module")
def field_b64(field):
    return JobSpec.encode_array(field)


@pytest.fixture(scope="module")
def heavy_field():
    """Big enough that one tune runs for seconds — killable mid-flight."""
    r = np.random.default_rng(3)
    return r.standard_normal((48, 48, 24)).cumsum(axis=0).astype(np.float32)


def tune_dict(b64, **over):
    base = dict(kind="tune", target_ratio=8.0, tolerance=0.15, data_b64=b64)
    base.update(over)
    return base


def wait_running(job, timeout=30.0):
    deadline = time.monotonic() + timeout
    while job.state is not JobState.RUNNING and time.monotonic() < deadline:
        time.sleep(0.005)
    assert job.state is JobState.RUNNING, job.state


class TestModeResolution:
    def test_explicit_modes(self):
        assert resolve_executor_mode("thread") == "thread"
        assert resolve_executor_mode("process") == "process"

    def test_auto_tracks_core_count(self):
        assert resolve_executor_mode("auto") == (
            "process" if (os.cpu_count() or 1) > 1 else "thread"
        )
        assert resolve_executor_mode(None) == resolve_executor_mode("auto")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(executor="frobnicate")


class TestProcessDispatch:
    def test_tune_bit_matches_serial(self, field, field_b64):
        with Scheduler(workers=2, executor="process") as s:
            job = s.submit(tune_dict(field_b64))
            s.wait(job.id, timeout=120)
            assert job.state is JobState.DONE
        direct = FRaZ(compressor="sz", target_ratio=8.0, tolerance=0.15).tune(field)
        assert job.result["error_bound"] == direct.error_bound
        assert job.result["ratio"] == direct.ratio

    def test_cache_delta_merges_back_to_parent(self, field_b64):
        with Scheduler(workers=1, executor="process") as s:
            first = s.submit(tune_dict(field_b64))
            s.wait(first.id, timeout=120)
            assert len(s.cache) > 0  # the worker's delta landed here
            # A rerun ships the snapshot out: every probe hits in the worker.
            second = s.submit(tune_dict(field_b64))
            s.wait(second.id, timeout=120)
            assert second.result["compressor_calls"] == 0

    def test_compress_writes_output(self, field_b64, tmp_path):
        out = tmp_path / "p.frz"
        with Scheduler(workers=1, executor="process") as s:
            job = s.submit({"kind": "compress", "error_bound": 1e-2,
                            "data_b64": field_b64, "output": str(out)})
            s.wait(job.id, timeout=120)
            assert job.state is JobState.DONE
        assert out.exists()

    def test_failure_retries_then_fails(self, tmp_path):
        with Scheduler(workers=1, executor="process") as s:
            job = s.submit({"kind": "tune", "target_ratio": 8.0,
                            "input": str(tmp_path / "missing.npy"),
                            "max_retries": 1})
            s.wait(job.id, timeout=120)
            assert job.state is JobState.FAILED
            assert job.attempts == 2
            assert "FileNotFoundError" in job.error
            assert job.crashes == 0  # an exception is not a crash

    def test_stats_expose_executor_section(self, field_b64):
        with Scheduler(workers=1, executor="process") as s:
            job = s.submit(tune_dict(field_b64))
            s.wait(job.id, timeout=120)
            payload = s.stats_payload()
        assert payload["executor"]["mode"] == "process"
        assert payload["executor"]["worker_crashes"] == 0
        assert payload["executor"]["pool_rebuilds"] == 0
        import json

        json.dumps(payload)

    def test_oversized_inline_array_is_spilled(self, field, field_b64):
        # A spill threshold below the payload size forces the temp-file
        # path; the result must be identical and must not leak the
        # scheduler-internal spill path (nor the spill file itself).
        import tempfile

        def spills():
            return {p for p in os.listdir(tempfile.gettempdir())
                    if p.startswith("repro-serve-spill-")}

        before = spills()
        with Scheduler(workers=1, executor="process", spill_threshold=64) as s:
            job = s.submit(tune_dict(field_b64))
            s.wait(job.id, timeout=120)
            assert job.state is JobState.DONE
            assert job.result["input"] is None
        direct = FRaZ(compressor="sz", target_ratio=8.0, tolerance=0.15).tune(field)
        assert job.result["error_bound"] == direct.error_bound
        assert spills() - before == set()


class TestCrashRecovery:
    """ISSUE 4 acceptance: SIGKILL a pool process mid-job; the job retries
    on a rebuilt pool and the result bit-matches a serial run."""

    def test_killed_worker_retries_and_matches_serial(self, heavy_field):
        b64 = JobSpec.encode_array(heavy_field)
        with Scheduler(workers=1, executor="process", cache=False) as s:
            # Warm the pool so worker processes exist before the kill.
            warm = s.submit(tune_dict(
                JobSpec.encode_array(heavy_field[:6, :6, :4]), target_ratio=4.0,
                tolerance=0.3))
            s.wait(warm.id, timeout=120)

            job = s.submit(tune_dict(b64))
            wait_running(job)
            time.sleep(0.2)  # let the worker get properly into the search
            pids = s._pool.worker_pids()
            assert pids, "pool has no live workers to kill"
            for pid in pids:
                os.kill(pid, signal.SIGKILL)

            s.wait(job.id, timeout=300)
            assert job.state is JobState.DONE
            assert job.attempts == 2  # one attempt lost to the crash
            assert job.crashes == 1
            assert s.stats.crashes >= 1
            assert s.stats.retried >= 1
            assert s._pool.rebuilds >= 1
            payload = s.stats_payload()
            assert payload["executor"]["worker_crashes"] >= 1
            assert payload["executor"]["pool_rebuilds"] >= 1

        direct = FRaZ(compressor="sz", target_ratio=8.0, tolerance=0.15,
                      cache=False).tune(heavy_field)
        assert job.result["error_bound"] == direct.error_bound
        assert job.result["ratio"] == direct.ratio

    def test_crash_with_spent_budget_fails_job(self, heavy_field):
        b64 = JobSpec.encode_array(heavy_field)
        with Scheduler(workers=1, executor="process", cache=False) as s:
            job = s.submit(tune_dict(b64, max_retries=0))
            wait_running(job)
            time.sleep(0.2)
            for pid in s._pool.worker_pids():
                os.kill(pid, signal.SIGKILL)
            s.wait(job.id, timeout=120)
            assert job.state is JobState.FAILED
            assert "WorkerCrashError" in job.error
            assert job.crashes == 1


class TestRunningCancellation:
    def test_tombstoned_running_job_discards_result(self, heavy_field):
        b64 = JobSpec.encode_array(heavy_field)
        with Scheduler(workers=1, executor="process", cache=False) as s:
            job = s.submit(tune_dict(b64))
            wait_running(job)
            time.sleep(0.3)  # let the pool worker actually begin the search
            assert s.cancel(job.id)
            # Cancellation is immediate from the caller's point of view...
            assert job.state is JobState.CANCELLED
            assert s.stats.cancelled == 1
            # ...and the worker's eventual result is thrown away.
            deadline = time.monotonic() + 300
            while s.stats.discarded == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert s.stats.discarded == 1
            assert s.stats.completed == 0
            assert job.result is None
            payload = s.stats_payload()
            assert payload["executor"]["discarded_results"] == 1

    def test_thread_backend_cannot_cancel_running(self, field_b64):
        with Scheduler(workers=1, executor="thread") as s:
            job = s.submit(tune_dict(field_b64))
            wait_running(job)
            assert not s.cancel(job.id)
            s.wait(job.id, timeout=120)
            assert job.state is JobState.DONE


class TestCancelEndpoint:
    def test_cancel_queued_job_over_http(self, field_b64):
        sched = Scheduler(workers=1, executor="thread", paused=True)
        with ServiceServer(scheduler=sched, port=0) as srv:
            client = ServiceClient(srv.url)
            ticket = client.submit(tune_dict(field_b64))
            reply = client.cancel(ticket["job_id"])
            assert reply["cancelled"] is True
            assert reply["state"] == "cancelled"
            # Idempotent-ish: a second cancel reports the terminal state.
            again = client.cancel(ticket["job_id"])
            assert again["cancelled"] is False
            assert again["state"] == "cancelled"
            sched.resume()

    def test_cancel_with_body_keeps_connection_in_sync(self, field_b64):
        # /cancel takes no body, but a keep-alive client may send one —
        # the handler must drain it, or the bytes get parsed as the next
        # request line.
        import http.client

        sched = Scheduler(workers=1, executor="thread", paused=True)
        with ServiceServer(scheduler=sched, port=0) as srv:
            client = ServiceClient(srv.url)
            ticket = client.submit(tune_dict(field_b64))
            conn = http.client.HTTPConnection(srv.host, srv.port, timeout=10)
            try:
                conn.request("POST", f"/cancel/{ticket['job_id']}", body=b'{"x": 1}',
                             headers={"Content-Type": "application/json"})
                resp = conn.getresponse()
                assert resp.status == 200
                resp.read()
                # The same (kept-alive) connection must still speak HTTP.
                conn.request("GET", "/health")
                resp = conn.getresponse()
                assert resp.status == 200
                resp.read()
            finally:
                conn.close()
            sched.resume()

    def test_cancel_unknown_job_is_404(self, field_b64):
        with ServiceServer(port=0, workers=1, executor="thread") as srv:
            client = ServiceClient(srv.url)
            from repro.serve import ServiceError

            with pytest.raises(ServiceError) as exc:
                client.cancel("j-nope")
            assert exc.value.status == 404
