"""Uptime must come from the monotonic clock.

Regression tests for the MONO001 findings the static checker surfaced:
``stats_payload`` in both the scheduler and the gateway router used to
compute uptime as ``time.time() - self._started_at``, so an NTP step (or
a test warping the wall clock) produced negative or wildly wrong uptime.
Both now keep a ``time.monotonic()`` anchor.
"""

from __future__ import annotations

import time

from repro.gateway.router import Router
from repro.serve.scheduler import Scheduler


def test_scheduler_uptime_survives_wall_clock_jump(monkeypatch):
    sched = Scheduler(workers=1, cache=False, metrics=False)
    frozen = time.time()
    # Warp the wall clock an hour into the past; monotonic is untouched.
    monkeypatch.setattr(time, "time", lambda: frozen - 3600.0)
    uptime = sched.stats_payload()["uptime_seconds"]
    assert 0.0 <= uptime < 60.0


def test_router_uptime_survives_wall_clock_jump(monkeypatch):
    router = Router(metrics=False)
    frozen = time.time()
    monkeypatch.setattr(time, "time", lambda: frozen - 3600.0)
    uptime = router.stats_payload()["uptime_seconds"]
    assert 0.0 <= uptime < 60.0


def test_scheduler_start_resets_monotonic_anchor():
    with Scheduler(workers=1, executor="thread", cache=False,
                   metrics=False) as sched:
        # start() re-anchors the monotonic base alongside the wall stamp.
        assert sched.stats_payload()["uptime_seconds"] >= 0.0
        assert sched._started_mono <= time.monotonic()
