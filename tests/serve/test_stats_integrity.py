"""Counter integrity under concurrent load, on both execution backends.

An 8-client overlapping burst (two fields x two targets, so most
submissions coalesce) is driven to completion, then every ledger the
service keeps is cross-checked: queue depth back to zero, every
submission accounted for exactly once, queue admissions equal to
submissions minus coalesced followers, and the search/cache counters
internally consistent.  The same invariants are asserted against the
``/stats`` ``metrics`` section, which must agree with the raw counters
by construction (callback metrics read the same numbers).
"""

import threading

import numpy as np
import pytest

from repro.serve import ServiceClient, ServiceServer

N_CLIENTS = 8
SUBMITS_PER_CLIENT = 4


@pytest.fixture(scope="module")
def fields():
    out = []
    for seed in (51, 52):
        r = np.random.default_rng(seed)
        out.append(r.standard_normal((16, 16)).cumsum(axis=0).astype(np.float32))
    return out


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_stats_integrity_under_burst(fields, executor):
    with ServiceServer(port=0, workers=2, queue_size=64,
                       executor=executor, paused=True) as server:
        client = ServiceClient(server.url)
        tickets: list[dict] = []
        lock = threading.Lock()
        errors: list[Exception] = []

        def one_client(idx: int) -> None:
            try:
                mine = []
                for i in range(SUBMITS_PER_CLIENT):
                    # Two fields x two targets: four distinct jobs, every
                    # other submission a coalesce candidate.
                    field = fields[(idx + i) % 2]
                    target = 6.0 if (idx + i) % 4 < 2 else 8.0
                    mine.append(client.submit_array(
                        field, kind="tune", target_ratio=target, tolerance=0.25))
                with lock:
                    tickets.extend(mine)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=one_client, args=(i,))
                   for i in range(N_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors, errors
        assert len(tickets) == N_CLIENTS * SUBMITS_PER_CLIENT

        # Everything submitted while paused: the coalescing window was
        # wide open and nothing has run yet.
        server.scheduler.resume()
        for ticket in tickets:
            client.result(ticket["job_id"], timeout=120)

        stats = client.stats()
        jobs, queue, search = stats["jobs"], stats["queue"], stats["search"]
        submitted = N_CLIENTS * SUBMITS_PER_CLIENT

        # -- job ledger: every submission accounted for exactly once ------
        assert jobs["submitted"] == submitted
        assert jobs["completed"] == submitted
        assert jobs["failed"] == 0
        assert jobs["cancelled"] == 0
        assert jobs["running"] == 0

        # -- queue ledger: admissions = submissions - coalesced -----------
        assert queue["depth"] == 0
        assert queue["enqueued"] == submitted - jobs["coalesced"]
        assert queue["rejected"] == 0
        # Four distinct (field, target) combinations existed, so at most
        # four primaries ever entered the queue per coalescing window.
        assert jobs["coalesced"] >= submitted - 4

        # -- search ledger: hits and misses partition the evaluations -----
        assert search["cache_hits"] + search["cache_misses"] == search["evaluations"]
        assert search["evaluations"] > 0

        # -- metrics section agrees with the raw counters ------------------
        metrics = stats["metrics"]
        assert metrics["repro_queue_depth"] == 0
        assert metrics["repro_jobs_running"] == 0
        assert metrics["repro_jobs_submitted_total"] == submitted
        assert metrics["repro_jobs_completed_total"] == submitted
        assert metrics["repro_jobs_coalesced_total"] == jobs["coalesced"]
        assert metrics["repro_queue_enqueued_total"] == queue["enqueued"]

        # Every completed job observed exactly one latency sample.
        job_counts = sum(v["count"] for k, v in metrics.items()
                         if k.startswith("repro_job_seconds{"))
        assert job_counts == submitted
        # Only primaries ran: one queue_wait and one run observation each.
        run = metrics['repro_stage_seconds{stage="run"}']
        wait = metrics['repro_stage_seconds{stage="queue_wait"}']
        assert run["count"] == submitted - jobs["coalesced"]
        assert wait["count"] == submitted - jobs["coalesced"]
