"""Documentation snippets and path references must stay runnable.

Runs ``tools/check_docs.py`` (the same script the CI docs job uses) so a
broken README/docs example fails the tier-1 suite, not just CI.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent


def test_doc_snippets_run_and_paths_exist():
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"doc check failed:\n{result.stdout}\n{result.stderr}"
    )
    assert "0 failures" in result.stdout
