"""Focused unit tests for the refinement proposals (parabola and V/secant)."""

import numpy as np
import pytest

from repro.optimize.trust_region import refine, v_refine


class TestVRefine:
    def test_exact_on_symmetric_v(self):
        # sqrt of a squared distance is an exact V; tip at 2.0.
        f = lambda x: (x - 2.0) ** 2
        xs = np.array([0.0, 3.0])
        x = v_refine(xs, f(xs), 0.0, 5.0)
        assert x == pytest.approx(2.0, abs=1e-12)

    def test_same_branch_converges_in_two_steps(self):
        # Two samples left of the crossing at 2.0 are ambiguous (tip vs
        # secant); iterating as the driver does resolves it immediately.
        f = lambda x: (x - 2.0) ** 2
        xs = [0.0, 1.0]
        ys = [f(x) for x in xs]
        for _ in range(3):
            x = v_refine(np.array(xs), np.array(ys), 0.0, 5.0)
            assert x is not None
            xs.append(x)
            ys.append(f(x))
            if min(ys) < 1e-12:
                break
        assert min(ys) < 1e-12

    def test_asymmetric_wall_converges_geometrically(self):
        # Distance-shaped loss with a steep far wall: a few V steps land in
        # a tight band around the minimum - the crawl case that motivated
        # the secant form.
        f = lambda x: (min(50.0 * x, 5.0 + 0.1 * x) - 5.0) ** 2  # kink at 0.1
        xs = [0.02, 3.0]
        ys = [f(x) for x in xs]
        for _ in range(6):
            x = v_refine(np.array(xs), np.array(ys), 0.0, 3.0)
            if x is None:
                break
            xs.append(x)
            ys.append(f(x))
        assert min(ys) < 0.5

    def test_none_when_single_point(self):
        assert v_refine(np.array([1.0]), np.array([0.5]), 0.0, 2.0) is None

    def test_none_when_proposals_duplicate(self):
        # All candidate tips collide with existing samples -> None.
        xs = np.array([0.0, 1.0, 2.0])
        ys = np.array([1.0, 1.0, 1.0])  # flat: secants undefined, tips mid
        out = v_refine(xs, ys, 0.0, 2.0)
        if out is not None:
            assert 0.0 <= out <= 2.0
            assert np.abs(xs - out).min() >= 1e-3 * 2.0

    def test_stays_in_bounds(self):
        f = lambda x: (x - 10.0) ** 2  # crossing outside the interval
        xs = np.array([0.0, 1.0])
        x = v_refine(xs, f(xs), 0.0, 2.0)
        assert x is None or 0.0 <= x <= 2.0


class TestRefineParabola:
    def test_quadratic_vertex_exact(self):
        f = lambda x: 3.0 * (x - 1.25) ** 2 + 0.5
        xs = np.array([0.0, 1.0, 2.5])
        x = refine(xs, f(xs), 0.0, 3.0)
        assert x == pytest.approx(1.25, abs=1e-9)

    def test_rejects_near_duplicate_proposals(self):
        f = lambda x: (x - 1.0) ** 2
        # Vertex at 1.0 coincides with a sample -> falls through to None or
        # a distinct point.
        xs = np.array([0.5, 1.0, 1.5])
        out = refine(xs, f(xs), 0.0, 2.0)
        if out is not None:
            assert np.abs(xs - out).min() >= 1e-3 * 2.0

    def test_boundary_best_bisects_outward(self):
        xs = np.array([2.0, 4.0])
        ys = np.array([5.0, 1.0])
        x = refine(xs, ys, 0.0, 10.0)
        assert x == pytest.approx(7.0)

    def test_single_point_none(self):
        assert refine(np.array([1.0]), np.array([2.0]), 0.0, 3.0) is None
