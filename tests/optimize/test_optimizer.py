"""Unit tests for the LIPO + trust-region global optimizer."""

import numpy as np
import pytest

from repro.optimize import find_global_min
from repro.optimize.lipo import estimate_lipschitz, lower_bound, propose
from repro.optimize.trust_region import refine


class TestLipschitzEstimate:
    def test_single_point_default(self):
        assert estimate_lipschitz(np.array([1.0]), np.array([2.0])) == 1.0

    def test_linear_function_recovers_slope(self):
        xs = np.array([0.0, 1.0, 2.0, 3.0])
        k = estimate_lipschitz(xs, 5.0 * xs)
        assert k == pytest.approx(5.0 * 1.1)

    def test_constant_function_tiny_positive(self):
        xs = np.array([0.0, 1.0])
        ys = np.array([2.0, 2.0])
        assert 0 < estimate_lipschitz(xs, ys) <= 1e-10


class TestLowerBound:
    def test_at_sample_points_equals_value(self):
        xs = np.array([0.0, 2.0])
        ys = np.array([1.0, 3.0])
        lb = lower_bound(xs, xs, ys, k=1.0)
        assert lb.tolist() == ys.tolist()

    def test_is_valid_lower_bound_for_lipschitz_function(self):
        rng = np.random.default_rng(0)
        f = lambda x: np.sin(2 * x)  # Lipschitz with k=2
        xs = rng.uniform(0, 5, 20)
        ys = f(xs)
        grid = np.linspace(0, 5, 200)
        lb = lower_bound(grid, xs, ys, k=2.0)
        assert (lb <= f(grid) + 1e-9).all()


class TestPropose:
    def test_within_interval(self):
        rng = np.random.default_rng(1)
        xs = np.array([0.0, 10.0])
        ys = np.array([5.0, 1.0])
        for _ in range(10):
            x = propose(xs, ys, 0.0, 10.0, rng)
            assert 0.0 <= x <= 10.0

    def test_degenerate_interval(self):
        rng = np.random.default_rng(2)
        assert propose(np.array([1.0]), np.array([0.0]), 1.0, 1.0, rng) == 1.0


class TestRefine:
    def test_parabola_vertex_found(self):
        xs = np.array([0.0, 1.0, 3.0])
        f = lambda x: (x - 1.8) ** 2
        x = refine(xs, f(xs), 0.0, 3.0)
        assert x == pytest.approx(1.8, abs=1e-9)

    def test_returns_none_on_duplicate(self):
        xs = np.array([0.0, 1.8, 3.6])
        f = lambda x: (x - 1.8) ** 2
        # Vertex coincides with the middle sample -> rejected.
        assert refine(xs, f(xs), 0.0, 3.6) is None

    def test_best_at_boundary_bisects_outward(self):
        xs = np.array([0.0, 5.0])
        ys = np.array([1.0, 0.0])  # best at right hull point
        x = refine(xs, ys, 0.0, 10.0)
        assert x == pytest.approx(7.5)

    def test_concave_bracket_bisects(self):
        xs = np.array([0.0, 1.0, 4.0])
        ys = np.array([1.0, 0.5, 0.9])
        x = refine(xs, ys, 0.0, 4.0)
        assert x is not None and 0.0 < x < 4.0


class TestFindGlobalMin:
    def test_quadratic(self):
        r = find_global_min(lambda x: (x - 3.3) ** 2, 0, 10, max_calls=30, seed=0)
        assert r.f_best < 1e-2

    def test_multimodal_finds_global(self):
        f = lambda x: np.sin(3 * x) + 0.3 * x
        r = find_global_min(f, 0, 10, max_calls=50, seed=0)
        grid = np.linspace(0, 10, 100_001)
        assert r.f_best <= f(grid).min() + 0.05

    def test_respects_bounds(self):
        r = find_global_min(lambda x: x, -2.0, 5.0, max_calls=25, seed=3)
        assert all(-2.0 <= h.x <= 5.0 for h in r.history)

    def test_respects_budget(self):
        r = find_global_min(lambda x: x * x, 0, 1, max_calls=7, seed=0)
        assert r.n_calls <= 7

    def test_cutoff_early_stop(self):
        calls = []
        f = lambda x: calls.append(x) or (x - 0.5) ** 2
        r = find_global_min(f, 0, 1, max_calls=100, cutoff=0.3, seed=0)
        assert r.hit_cutoff
        assert r.n_calls < 10

    def test_no_cutoff_flag_false(self):
        r = find_global_min(lambda x: x + 1, 0, 1, max_calls=5, seed=0)
        assert not r.hit_cutoff

    def test_initial_points_evaluated_first(self):
        r = find_global_min(lambda x: (x - 2) ** 2, 0, 10, max_calls=10, seed=0,
                            initial_points=[2.0], cutoff=1e-12)
        assert r.n_calls == 1
        assert r.x_best == 2.0

    def test_best_is_min_of_history(self):
        r = find_global_min(lambda x: np.cos(5 * x), 0, 3, max_calls=20, seed=1)
        assert r.f_best == min(h.fx for h in r.history)

    def test_deterministic_given_seed(self):
        f = lambda x: np.sin(7 * x) + x / 5
        r1 = find_global_min(f, 0, 5, max_calls=25, seed=42)
        r2 = find_global_min(f, 0, 5, max_calls=25, seed=42)
        assert [h.x for h in r1.history] == [h.x for h in r2.history]

    def test_step_function_plateau_escape(self):
        # Staircase objective - the compressor-ratio shape (Fig. 4).
        f = lambda x: (np.floor(x) * 2 + 5 - 15.0) ** 2
        r = find_global_min(f, 0, 20, max_calls=60, cutoff=(0.1 * 15) ** 2, seed=2)
        assert r.hit_cutoff

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            find_global_min(lambda x: x, 1.0, 1.0)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            find_global_min(lambda x: x, 0.0, 1.0, max_calls=0)
