"""Public-API surface snapshot: accidental breaks fail the build.

CI's ``api-surface`` job runs exactly this module.  If you changed
``repro.api`` on purpose, update :data:`EXPECTED_API_EXPORTS` here and
document the change in ``docs/API.md``.
"""

import repro
import repro.api as api

#: The frozen export list of ``repro.api`` (sorted).  This is a public
#: contract — additions are fine (append here), removals/renames are
#: breaking changes.
EXPECTED_API_EXPORTS = [
    "CompressReport",
    "CompressionRequest",
    "DecompressReport",
    "DEFAULT_STREAM_THRESHOLD",
    "Plan",
    "REQUEST_KINDS",
    "ROUTES",
    "Report",
    "Resources",
    "StreamReport",
    "TuneReport",
    "encode_array",
    "execute",
    "plan",
    "report_from_dict",
    "run",
]

#: The top-level package surface, snapshotted for the same reason.
EXPECTED_TOP_LEVEL_EXPORTS = [
    "EvalCache",
    "FRaZ",
    "FieldResult",
    "TimeSeriesResult",
    "TrainingResult",
    "__version__",
    "available_compressors",
    "evaluate",
    "make_compressor",
]


def test_api_all_matches_snapshot():
    assert sorted(api.__all__, key=str.lower) == sorted(
        EXPECTED_API_EXPORTS, key=str.lower
    )


def test_every_api_export_resolves():
    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_top_level_all_matches_snapshot():
    assert sorted(repro.__all__) == sorted(EXPECTED_TOP_LEVEL_EXPORTS)
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_request_kinds_and_routes_are_stable():
    assert api.REQUEST_KINDS == ("tune", "compress", "decompress", "stream")
    assert api.ROUTES == ("memory", "stream", "service")
    assert api.DEFAULT_STREAM_THRESHOLD == 32 * 2**20
