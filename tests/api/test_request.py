"""CompressionRequest validation, serialization, and JobSpec equivalence."""

import json

import numpy as np
import pytest

from repro.api.request import CompressionRequest, Resources, encode_array
from repro.serve.jobs import PRIORITY_HIGH, JobSpec


@pytest.fixture()
def data():
    return np.random.default_rng(7).standard_normal((8, 8)).astype(np.float32)


def tune_request(data, **over):
    base = dict(kind="tune", target_ratio=8.0, data_b64=encode_array(data))
    base.update(over)
    return CompressionRequest(**base)


class TestValidation:
    def test_bad_kind(self, data):
        with pytest.raises(ValueError, match="kind"):
            tune_request(data, kind="frobnicate")

    def test_requires_exactly_one_data_source(self, data):
        with pytest.raises(ValueError, match="exactly one"):
            tune_request(data, input="also.npy")
        with pytest.raises(ValueError, match="exactly one"):
            CompressionRequest(kind="tune", target_ratio=8.0)

    def test_conflicting_objectives_rejected(self, data):
        b64 = encode_array(data)
        with pytest.raises(ValueError, match="exactly one of target_ratio or error_bound"):
            CompressionRequest(kind="compress", data_b64=b64, output="o.frz",
                               target_ratio=8.0, error_bound=1e-3)
        with pytest.raises(ValueError, match="exactly one of target_ratio or error_bound"):
            CompressionRequest(kind="compress", data_b64=b64, output="o.frz")

    def test_tune_objective_rules(self, data):
        with pytest.raises(ValueError, match="target_ratio"):
            CompressionRequest(kind="tune", data_b64=encode_array(data))
        with pytest.raises(ValueError, match="not error_bound"):
            tune_request(data, error_bound=1e-3)
        with pytest.raises(ValueError, match="no output"):
            tune_request(data, output="o.frz")

    def test_decompress_rules(self):
        CompressionRequest(kind="decompress", input="x.frz", output="x.npy")
        with pytest.raises(ValueError, match="input"):
            CompressionRequest(kind="decompress", output="x.npy")
        with pytest.raises(ValueError, match="target_ratio or error_bound"):
            CompressionRequest(kind="decompress", input="x.frz", output="x.npy",
                               error_bound=1e-3)

    def test_stream_kind_requires_file_input(self, data):
        with pytest.raises(ValueError, match="file input"):
            CompressionRequest(kind="stream", target_ratio=8.0,
                               data_b64=encode_array(data), output="o.frzs")

    def test_stream_hint_only_for_compress(self, data):
        with pytest.raises(ValueError, match="stream"):
            tune_request(data, stream=True)
        with pytest.raises(ValueError, match="stream"):
            CompressionRequest(kind="stream", target_ratio=8.0, input="x.npy",
                               output="o.frzs", stream=True)

    def test_bad_tolerance_and_targets(self, data):
        with pytest.raises(ValueError, match="tolerance"):
            tune_request(data, tolerance=0.0)
        with pytest.raises(ValueError, match="target_ratio"):
            tune_request(data, target_ratio=-1.0)
        with pytest.raises(ValueError, match="max_error_bound"):
            tune_request(data, max_error_bound=0.0)

    def test_mistyped_json_fields_raise_value_error(self, data):
        """Wire payloads must surface as ValueError (the HTTP 400 path),
        never TypeError from a comparison deep in validation."""
        with pytest.raises(ValueError, match="target_ratio must be a number"):
            tune_request(data, target_ratio="8.0")
        with pytest.raises(ValueError, match="error_bound must be a number"):
            CompressionRequest(kind="compress", data_b64=encode_array(data),
                               output="o.frz", error_bound="1e-3")
        with pytest.raises(ValueError, match="tolerance"):
            tune_request(data, tolerance=None)
        with pytest.raises(ValueError, match="tolerance must be a number"):
            tune_request(data, tolerance="0.1")
        with pytest.raises(ValueError, match="output must be a string"):
            CompressionRequest(kind="compress", data_b64=encode_array(data),
                               output=7, error_bound=1e-3)
        with pytest.raises(ValueError, match="compressor"):
            tune_request(data, compressor=None)

    def test_unknown_compressor_and_options(self, data):
        with pytest.raises(ValueError, match="available"):
            tune_request(data, compressor="gzip9000")
        with pytest.raises(ValueError, match="block_size"):
            tune_request(data, options={"typo_option": 1})
        # valid options pass and normalise
        req = tune_request(data, options={"block_size": 4})
        assert req.options == {"block_size": 4}

    def test_objective_fields_rejected_inside_options(self, data):
        with pytest.raises(ValueError, match="top-level"):
            tune_request(data, options={"error_bound": 1e-3})

    def test_stream_options_validated(self):
        with pytest.raises(ValueError, match="stream_options"):
            CompressionRequest(kind="stream", target_ratio=8.0, input="x.npy",
                               output="o.frzs", stream_options={"frobnicate": 1})
        req = CompressionRequest(kind="stream", target_ratio=8.0, input="x.npy",
                                 output="o.frzs",
                                 stream_options={"chunk_shape": [16, 16]})
        assert req.stream_options["chunk_shape"] == (16, 16)

    def test_resources_validated(self, data):
        with pytest.raises(ValueError, match="executor"):
            tune_request(data, resources=Resources(executor="gpu"))
        with pytest.raises(ValueError, match="max_memory"):
            tune_request(data, resources={"max_memory": -1})
        with pytest.raises(ValueError, match="resources"):
            tune_request(data, resources={"frobnicate": 1})


class TestWireFormat:
    def test_json_round_trip(self, data):
        req = CompressionRequest(
            kind="stream", compressor="zfp", target_ratio=8.0, tolerance=0.2,
            input="x.npy", output="o.frzs",
            options={"error_bound": 1e-3} if False else {},
            stream_options={"chunk_shape": (16, 16), "train_chunks": 2},
            resources=Resources(workers=2, executor="thread", max_memory=1 << 20),
        )
        again = CompressionRequest.from_json(req.to_json())
        assert again == req
        # and through plain dicts (what the HTTP body parsing does)
        assert CompressionRequest.from_dict(json.loads(req.to_json())) == req

    def test_from_dict_rejects_unknown_keys(self, data):
        payload = tune_request(data).to_dict()
        payload["frobnicate"] = 1
        with pytest.raises(ValueError, match="unknown request fields"):
            CompressionRequest.from_dict(payload)

    def test_from_dict_requires_kind(self):
        with pytest.raises(ValueError, match="kind"):
            CompressionRequest.from_dict({"target_ratio": 8.0, "input": "x.npy"})

    def test_inline_array_round_trip(self, data):
        req = tune_request(data)
        np.testing.assert_array_equal(req.load_array(), data)

    def test_to_dict_is_json_ready(self, data):
        req = tune_request(data, stream_options={}, resources={"workers": 2})
        json.dumps(req.to_dict())


class TestJobSpecEquivalence:
    """JobSpec is a serialization of CompressionRequest (+ scheduling)."""

    def test_legacy_flat_json_still_accepted(self, data):
        legacy = {
            "kind": "compress",
            "compressor": "sz",
            "target_ratio": 8.0,
            "error_bound": None,
            "tolerance": 0.1,
            "max_error_bound": None,
            "input": None,
            "data_b64": encode_array(data),
            "output": "o.frz",
            "priority": "high",
            "max_retries": 2,
            "stream": None,
        }
        spec = JobSpec.from_dict(legacy)
        assert spec.priority == PRIORITY_HIGH and spec.max_retries == 2
        assert spec.request == CompressionRequest(
            kind="compress", target_ratio=8.0,
            data_b64=legacy["data_b64"], output="o.frz",
        )

    def test_request_json_accepted_by_jobspec(self, data):
        req = CompressionRequest(kind="tune", target_ratio=8.0,
                                 data_b64=encode_array(data),
                                 options={"block_size": 4},
                                 resources=Resources(max_memory=1 << 20))
        spec = JobSpec.from_dict({**req.to_dict(), "priority": "low"})
        assert spec.request == req
        # the spec's own wire form is the request's plus scheduling fields
        assert JobSpec.from_dict(spec.to_dict()) == spec
        assert {k: v for k, v in spec.to_dict().items()
                if k not in ("priority", "max_retries")} == req.to_dict()

    def test_from_request_round_trip(self, data):
        req = tune_request(data)
        spec = JobSpec.from_request(req, priority=PRIORITY_HIGH)
        assert spec.request == req
        assert spec.priority == PRIORITY_HIGH

    def test_options_split_coalesce_keys(self, data):
        a = JobSpec.from_request(tune_request(data))
        b = JobSpec.from_request(tune_request(data, options={"block_size": 4}))
        assert a.coalesce_key() != b.coalesce_key()
        # resources that don't change bytes do not split keys
        c = JobSpec.from_request(tune_request(data, resources={"workers": 7}))
        assert a.coalesce_key() == c.coalesce_key()
