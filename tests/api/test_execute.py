"""Acceptance: one request, every entry point, bit-identical output.

The ISSUE's core criterion — a single :class:`CompressionRequest`
submitted via the Python facade (``api.execute``), the CLI
(``repro run`` / ``repro compress --json``), and the HTTP service
produces bit-identical compressed files and structurally identical
report JSON.
"""

import json

import numpy as np
import pytest

from repro.api import CompressionRequest, Resources, execute, plan
from repro.cli import main
from repro.serve import ServiceClient, ServiceServer


@pytest.fixture(scope="module")
def field_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("data") / "field.npy"
    r = np.random.default_rng(81)
    np.save(path, r.standard_normal((32, 32)).cumsum(axis=0).astype(np.float32))
    return str(path)


def compress_request(field_file, output, **over):
    base = dict(kind="compress", compressor="sz", target_ratio=8.0,
                tolerance=0.2, input=field_file, output=output)
    base.update(over)
    return CompressionRequest(**base)


def structural_keys(payload: dict) -> dict:
    """Key sets, recursively — 'structurally identical' report JSON.

    The ``cache`` block is a nullable diagnostics section by contract
    (``None`` for fixed-bound runs and for service jobs, whose shared
    cache is reported in ``/stats``), so it is treated as a leaf.
    """
    return {
        k: structural_keys(v) if isinstance(v, dict) and k != "cache" else None
        for k, v in payload.items()
    }


class TestThreeWayEquivalence:
    def test_facade_cli_service_bit_identical(self, tmp_path, field_file, capsys):
        out = {name: str(tmp_path / f"{name}.frz")
               for name in ("facade", "cli", "service")}

        # 1. Python facade
        facade_report = execute(plan(compress_request(field_file, out["facade"])))

        # 2. CLI: the same request via a JSON spec file
        spec_path = tmp_path / "request.json"
        spec_path.write_text(
            compress_request(field_file, out["cli"]).to_json())
        assert main(["run", str(spec_path)]) == 0
        cli_report = json.loads(capsys.readouterr().out)

        # 3. HTTP service
        with ServiceServer(port=0, workers=1, executor="thread") as server:
            client = ServiceClient(server.url)
            ticket = client.submit(compress_request(field_file, out["service"]))
            service_report = client.result(ticket["job_id"], timeout=120.0)

        blobs = {name: open(path, "rb").read() for name, path in out.items()}
        assert blobs["facade"] == blobs["cli"] == blobs["service"]

        reports = {"facade": facade_report.to_dict(), "cli": cli_report,
                   "service": service_report}
        shapes = {name: structural_keys(r) for name, r in reports.items()}
        assert shapes["facade"] == shapes["cli"] == shapes["service"]
        for name, report in reports.items():
            assert report["error_bound"] == reports["facade"]["error_bound"], name
            assert report["ratio"] == reports["facade"]["ratio"], name
            assert report["compressed_nbytes"] == reports["facade"]["compressed_nbytes"], name
            assert report["tuning"]["evaluations"] == reports["facade"]["tuning"]["evaluations"], name

    def test_tune_equivalent_through_cli_json(self, tmp_path, field_file, capsys):
        req = CompressionRequest(kind="tune", compressor="sz", target_ratio=8.0,
                                 tolerance=0.2, input=field_file)
        facade = execute(plan(req)).to_dict()

        rc = main(["tune", field_file, "-r", "8", "-t", "0.2", "--json"])
        cli = json.loads(capsys.readouterr().out)
        assert rc in (0, 2)
        assert structural_keys(facade) == structural_keys(cli)
        assert facade["error_bound"] == cli["error_bound"]
        assert facade["evaluations"] == cli["evaluations"]

    def test_fixed_bound_cli_flags_match_request_file(self, tmp_path, field_file,
                                                      capsys):
        a, b = str(tmp_path / "a.frz"), str(tmp_path / "b.frz")
        assert main(["compress", field_file, a, "-e", "1e-2", "--json"]) == 0
        flag_report = json.loads(capsys.readouterr().out)

        spec = tmp_path / "fixed.json"
        spec.write_text(compress_request(
            field_file, b, target_ratio=None, error_bound=1e-2,
            tolerance=0.1, stream=False).to_json())
        assert main(["run", str(spec)]) == 0
        file_report = json.loads(capsys.readouterr().out)

        assert open(a, "rb").read() == open(b, "rb").read()
        assert structural_keys(flag_report) == structural_keys(file_report)


class TestExecuteDetails:
    def test_execute_accepts_bare_request(self, tmp_path, field_file):
        report = execute(compress_request(field_file, str(tmp_path / "x.frz")))
        assert report.to_dict()["kind"] == "compress"

    def test_request_resources_win_over_fallbacks(self, tmp_path, field_file):
        req = compress_request(
            field_file, str(tmp_path / "r.frzs"), kind="stream", stream=None,
            stream_options={"chunk_shape": (8, 32)},
            resources=Resources(workers=2, executor="thread"),
        )
        report = execute(plan(req), workers=1, executor="serial")
        assert report.n_chunks == 4

    def test_cache_dir_persisted(self, tmp_path, field_file):
        cache_dir = tmp_path / "cache"
        req = CompressionRequest(
            kind="tune", target_ratio=8.0, tolerance=0.2, input=field_file,
            resources=Resources(cache_dir=str(cache_dir)),
        )
        first = execute(plan(req))
        assert cache_dir.exists()
        second = execute(plan(req))
        assert second.error_bound == first.error_bound
        assert second.cache["hits"] > 0

    def test_decompress_round_trip(self, tmp_path, field_file):
        frz = str(tmp_path / "x.frz")
        compressed = execute(compress_request(field_file, frz, target_ratio=None,
                                              error_bound=1e-2))
        recon_path = tmp_path / "recon.npy"
        report = execute(CompressionRequest(kind="decompress", input=frz,
                                            output=str(recon_path)))
        assert report.output == str(recon_path)
        recon = np.load(recon_path)
        original = np.load(field_file)
        assert recon.shape == tuple(report.shape) == original.shape
        assert np.abs(recon.astype(np.float64)
                      - original.astype(np.float64)).max() <= 1e-2
        assert compressed.ratio == pytest.approx(report.ratio)

    def test_service_kind_stream_and_decompress(self, tmp_path, field_file):
        """The service accepts every request kind, not just tune/compress."""
        frzs = str(tmp_path / "s.frzs")
        with ServiceServer(port=0, workers=1, executor="thread") as server:
            client = ServiceClient(server.url)
            ticket = client.submit(CompressionRequest(
                kind="stream", error_bound=1e-2, input=field_file, output=frzs,
                stream_options={"chunk_shape": (16, 32)}))
            stream_result = client.result(ticket["job_id"], timeout=120.0)
            assert stream_result["streamed"] is True
            recon = str(tmp_path / "s-recon.npy")
            ticket = client.submit(CompressionRequest(
                kind="decompress", input=frzs, output=recon))
            result = client.result(ticket["job_id"], timeout=120.0)
        assert result["kind"] == "decompress"
        np.testing.assert_allclose(
            np.load(recon).astype(np.float64),
            np.load(field_file).astype(np.float64), atol=1e-2)
