"""Typed reports: wire-dict compatibility with serve.schema, and parsing."""

import json

import numpy as np
import pytest

from repro.api import (
    CompressReport,
    CompressionRequest,
    DecompressReport,
    StreamReport,
    TuneReport,
    execute,
    plan,
    report_from_dict,
)
from repro.core.fraz import FRaZ
from repro.serve import schema


@pytest.fixture(scope="module")
def tuned(smooth2d):
    fraz = FRaZ(compressor="sz", target_ratio=8.0, tolerance=0.2)
    payload, result = fraz.compress(smooth2d)
    return fraz, payload, result


class TestSchemaCompatibility:
    """serve.schema payloads are exactly the report classes' wire dicts."""

    def test_tune_payload_matches_report(self, tuned):
        fraz, _, result = tuned
        via_schema = schema.tune_payload(
            result, compressor="sz", input="f.npy", max_error_bound=None,
            cache=fraz.evaluation_cache,
        )
        via_report = TuneReport.from_training(
            result, compressor="sz", input="f.npy",
            cache=fraz.evaluation_cache,
        ).to_dict()
        assert via_schema == via_report
        assert list(via_schema) == list(via_report)  # key order too

    def test_compress_payload_matches_report(self, tuned):
        _, payload, result = tuned
        tuning = schema.tune_payload(result, compressor="sz")
        via_schema = schema.compress_payload(
            payload, compressor="sz", error_bound=result.error_bound,
            output="o.frz", tuning=tuning, wall_seconds=0.125,
        )
        via_report = CompressReport.from_field(
            payload, compressor="sz", error_bound=result.error_bound,
            output="o.frz", tuning=TuneReport.from_dict(tuning),
            wall_seconds=0.125,
        ).to_dict()
        assert via_schema == via_report

    def test_stream_payload_matches_report(self, tmp_path, smooth2d):
        src = tmp_path / "f.npy"
        np.save(src, smooth2d)
        req = CompressionRequest(
            kind="stream", error_bound=1e-2, input=str(src),
            output=str(tmp_path / "f.frzs"),
            stream_options={"chunk_shape": (16, 40)},
        )
        report = execute(plan(req))
        assert isinstance(report, StreamReport)
        assert report.to_dict()["streamed"] is True
        assert report.to_dict()["n_chunks"] == report.n_chunks


class TestRoundTrip:
    def test_every_kind_parses_back(self, tuned, tmp_path, smooth2d):
        fraz, payload, result = tuned
        reports = [
            TuneReport.from_training(result, compressor="sz"),
            CompressReport.from_field(
                payload, compressor="sz", error_bound=result.error_bound,
                tuning=TuneReport.from_training(result, compressor="sz"),
            ),
        ]
        src = tmp_path / "f.npy"
        np.save(src, smooth2d)
        reports.append(execute(plan(CompressionRequest(
            kind="stream", error_bound=1e-2, input=str(src),
            output=str(tmp_path / "f.frzs")))))
        reports.append(execute(plan(CompressionRequest(
            kind="decompress", input=str(tmp_path / "f.frzs"),
            output=str(tmp_path / "r.npy")))))
        for report in reports:
            wire = json.loads(json.dumps(report.to_dict()))
            again = report_from_dict(wire)
            assert type(again) is type(report)
            assert again.to_dict() == report.to_dict()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            report_from_dict({"kind": "frobnicate"})

    def test_counters_feed_service_accounting(self, tuned):
        _, payload, result = tuned
        tune = TuneReport.from_training(result, compressor="sz")
        assert tune.counters == (result.evaluations, result.compressor_calls)
        fixed = CompressReport.from_field(payload, compressor="sz", error_bound=1e-3)
        assert fixed.counters == (0, 0) and fixed.feasible
        tuned_report = CompressReport.from_field(
            payload, compressor="sz", error_bound=1e-3, tuning=tune)
        assert tuned_report.counters == tune.counters

    def test_decompress_report_shape(self):
        report = DecompressReport(
            compressor="sz", input="x.frz", output="x.npy", ratio=8.0,
            shape=(4, 4), dtype="<f4",
        )
        wire = report.to_dict()
        assert wire["kind"] == "decompress" and wire["streamed"] is False
        assert report_from_dict(wire) == report
