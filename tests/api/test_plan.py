"""plan(): the one routing decision shared by CLI, facade, and service."""

import numpy as np
import pytest

from repro.api import CompressionRequest, Plan, plan
from repro.api.request import encode_array


@pytest.fixture()
def npy_file(tmp_path):
    path = tmp_path / "f.npy"
    np.save(path, np.zeros((64, 64), dtype=np.float32))
    return str(path)


def compress_request(npy_file, **over):
    base = dict(kind="compress", target_ratio=8.0, input=npy_file,
                output=npy_file + ".frz")
    base.update(over)
    return CompressionRequest(**base)


class TestRouting:
    def test_small_file_routes_memory(self, npy_file):
        p = plan(compress_request(npy_file))
        assert p.route == "memory"

    def test_large_file_routes_stream(self, npy_file):
        p = plan(compress_request(npy_file), stream_threshold=1024)
        assert p.route == "stream"
        assert "1024" in p.reason

    def test_hint_forces_and_forbids(self, npy_file):
        assert plan(compress_request(npy_file, stream=True)).route == "stream"
        forbid = compress_request(npy_file, stream=False)
        assert plan(forbid, stream_threshold=1024).route == "memory"

    def test_stream_kind_always_streams(self, npy_file):
        req = CompressionRequest(kind="stream", target_ratio=8.0,
                                 input=npy_file, output=npy_file + ".frzs")
        assert plan(req).route == "stream"

    def test_tune_always_memory(self, npy_file):
        req = CompressionRequest(kind="tune", target_ratio=8.0, input=npy_file)
        assert plan(req, stream_threshold=1).route == "memory"

    def test_inline_data_routes_memory(self):
        req = CompressionRequest(kind="compress", error_bound=1e-3,
                                 data_b64=encode_array(np.zeros(4, np.float32)),
                                 output="o.frz")
        assert plan(req, stream_threshold=1).route == "memory"

    def test_service_url_routes_service(self, npy_file):
        p = plan(compress_request(npy_file), service_url="http://127.0.0.1:1")
        assert p.route == "service"
        assert p.endpoint == "http://127.0.0.1:1"

    def test_decompress_routes_by_container(self, tmp_path, npy_file):
        from repro.api import execute

        frz = str(tmp_path / "x.frz")
        execute(plan(compress_request(npy_file, error_bound=1e-3,
                                      target_ratio=None, output=frz)))
        req = CompressionRequest(kind="decompress", input=frz,
                                 output=str(tmp_path / "r.npy"))
        assert plan(req).route == "memory"

        frzs = str(tmp_path / "x.frzs")
        execute(plan(CompressionRequest(
            kind="stream", error_bound=1e-3, input=npy_file, output=frzs,
            stream_options={"chunk_shape": (32, 64)})))
        req = CompressionRequest(kind="decompress", input=frzs,
                                 output=str(tmp_path / "r2.npy"))
        assert plan(req).route == "stream"


class TestPlanRecord:
    def test_plan_is_json_ready(self, npy_file):
        import json

        json.dumps(plan(compress_request(npy_file)).to_dict())

    def test_invalid_route_rejected(self, npy_file):
        with pytest.raises(ValueError, match="route"):
            Plan(compress_request(npy_file), "teleport", "nope")
        with pytest.raises(ValueError, match="endpoint"):
            Plan(compress_request(npy_file), "service", "no endpoint given")
