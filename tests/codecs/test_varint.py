"""Unit tests for LEB128 varints and zigzag mapping."""

import numpy as np
import pytest

from repro.codecs.varint import (
    decode_uvarint,
    decode_uvarints,
    encode_uvarint,
    encode_uvarints,
    zigzag_decode,
    zigzag_encode,
)


class TestScalarVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**62])
    def test_roundtrip(self, value):
        blob = encode_uvarint(value)
        decoded, off = decode_uvarint(blob)
        assert decoded == value
        assert off == len(blob)

    def test_small_values_one_byte(self):
        assert len(encode_uvarint(127)) == 1
        assert len(encode_uvarint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1)

    def test_truncated_raises(self):
        blob = encode_uvarint(300)[:-1]
        with pytest.raises(ValueError):
            decode_uvarint(blob)

    def test_offset_chaining(self):
        blob = encode_uvarint(5) + encode_uvarint(1000)
        v1, off = decode_uvarint(blob, 0)
        v2, off = decode_uvarint(blob, off)
        assert (v1, v2) == (5, 1000)
        assert off == len(blob)


class TestArrayVarints:
    def test_roundtrip(self):
        values = np.array([0, 1, 127, 128, 2**40, 7], dtype=np.uint64)
        blob = encode_uvarints(values)
        decoded, off = decode_uvarints(blob, values.size)
        assert (decoded == values).all()
        assert off == len(blob)

    def test_empty(self):
        assert encode_uvarints(np.zeros(0, np.uint64)) == b""
        decoded, off = decode_uvarints(b"", 0)
        assert decoded.size == 0 and off == 0

    def test_truncated_stream_raises(self):
        blob = encode_uvarints(np.array([1, 2, 3], dtype=np.uint64))
        with pytest.raises(ValueError):
            decode_uvarints(blob, 4)


class TestZigzag:
    def test_small_magnitude_maps_small(self):
        values = np.array([0, -1, 1, -2, 2], dtype=np.int64)
        assert zigzag_encode(values).tolist() == [0, 1, 2, 3, 4]

    def test_roundtrip_extremes(self):
        values = np.array(
            [0, 1, -1, 2**62, -(2**62), np.iinfo(np.int64).max, np.iinfo(np.int64).min],
            dtype=np.int64,
        )
        assert (zigzag_decode(zigzag_encode(values)) == values).all()

    def test_roundtrip_random(self):
        r = np.random.default_rng(4)
        values = r.integers(-(2**60), 2**60, 1000)
        assert (zigzag_decode(zigzag_encode(values)) == values).all()
