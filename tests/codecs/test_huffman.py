"""Unit tests for canonical length-limited Huffman coding."""

import numpy as np
import pytest

from repro.codecs.huffman import (
    MAX_CODE_LEN,
    HuffmanCodec,
    HuffmanTable,
    canonical_codes,
    code_lengths,
)


class TestCodeLengths:
    def test_empty(self):
        assert code_lengths(np.zeros(0, np.int64)).size == 0

    def test_single_symbol_gets_length_one(self):
        assert code_lengths(np.array([42])).tolist() == [1]

    def test_two_symbols(self):
        assert code_lengths(np.array([1, 9])).tolist() == [1, 1]

    def test_uniform_four(self):
        assert code_lengths(np.array([5, 5, 5, 5])).tolist() == [2, 2, 2, 2]

    def test_skewed_distribution_gives_short_code_to_frequent(self):
        lens = code_lengths(np.array([1000, 10, 10, 10]))
        assert lens[0] == lens.min()

    def test_kraft_inequality(self):
        r = np.random.default_rng(1)
        freqs = r.integers(1, 10_000, 300)
        lens = code_lengths(freqs)
        assert (2.0 ** (-lens.astype(float))).sum() <= 1.0 + 1e-12

    def test_length_limit_enforced_on_fibonacci_frequencies(self):
        # Fibonacci frequencies force maximal depth in unconstrained Huffman.
        fib = [1, 1]
        while len(fib) < 40:
            fib.append(fib[-1] + fib[-2])
        lens = code_lengths(np.array(fib))
        assert lens.max() <= MAX_CODE_LEN
        assert (2.0 ** (-lens.astype(float))).sum() <= 1.0 + 1e-12

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            code_lengths(np.array([3, 0]))

    def test_rejects_oversized_alphabet(self):
        with pytest.raises(ValueError):
            code_lengths(np.ones(1 << 17, dtype=np.int64), max_len=16)


class TestCanonicalCodes:
    def test_prefix_free(self):
        lens = code_lengths(np.array([50, 20, 20, 5, 5]))
        codes = canonical_codes(lens)
        entries = sorted(zip(lens.tolist(), codes.tolist()))
        as_bits = [format(c, f"0{l}b") for l, c in entries]
        for i, a in enumerate(as_bits):
            for b in as_bits[i + 1 :]:
                assert not b.startswith(a), f"{a} is a prefix of {b}"

    def test_codes_fit_their_lengths(self):
        lens = np.array([3, 3, 2, 4, 4])
        codes = canonical_codes(lens)
        assert all(int(c) < (1 << int(l)) for c, l in zip(codes, lens))


class TestHuffmanTable:
    def test_serialize_roundtrip(self):
        data = np.array([5, -3, 5, 5, 100, -3], dtype=np.int64)
        table = HuffmanTable.from_symbols(data)
        blob = table.serialize()
        parsed, consumed = HuffmanTable.deserialize(blob)
        assert consumed == len(blob)
        assert (parsed.symbols == table.symbols).all()
        assert (parsed.lengths == table.lengths).all()
        assert (parsed.codes == table.codes).all()

    def test_expected_bits(self):
        data = np.array([0, 0, 0, 1], dtype=np.int64)
        table = HuffmanTable.from_symbols(data)
        counts = np.array([3, 1])
        assert table.expected_bits(counts) == int((counts * table.lengths).sum())


class TestHuffmanCodec:
    @pytest.mark.parametrize(
        "data",
        [
            np.zeros(0, np.int64),
            np.array([7], np.int64),
            np.array([7] * 100, np.int64),
            np.array([-1, 0, 1] * 50, np.int64),
            np.arange(-500, 500, dtype=np.int64),
        ],
        ids=["empty", "single", "constant", "ternary", "ramp"],
    )
    def test_roundtrip(self, data):
        codec = HuffmanCodec()
        assert (codec.decode(codec.encode(data)) == data).all()

    def test_roundtrip_geometric(self):
        r = np.random.default_rng(2)
        data = (r.geometric(0.2, 20000) - 1).astype(np.int64)
        codec = HuffmanCodec()
        blob = codec.encode(data)
        assert (codec.decode(blob) == data).all()
        # Skewed data must actually compress.
        assert len(blob) < data.nbytes / 4

    def test_compresses_skewed_better_than_uniform(self):
        r = np.random.default_rng(3)
        skewed = (r.geometric(0.5, 10000) - 1).astype(np.int64)
        uniform = r.integers(0, 256, 10000).astype(np.int64)
        codec = HuffmanCodec()
        assert len(codec.encode(skewed)) < len(codec.encode(uniform))

    def test_large_symbol_values(self):
        data = np.array([2**40, -(2**40), 2**40], dtype=np.int64)
        codec = HuffmanCodec()
        assert (codec.decode(codec.encode(data)) == data).all()

    def test_multidimensional_input_flattened(self):
        data = np.arange(24, dtype=np.int64).reshape(2, 3, 4)
        codec = HuffmanCodec()
        assert (codec.decode(codec.encode(data)) == data.ravel()).all()
