"""Unit tests for the vectorised bitstream layer."""

import numpy as np
import pytest

from repro.codecs.bitstream import BitReader, BitWriter, pack_bits, unpack_bits


class TestPackBits:
    def test_empty(self):
        assert pack_bits(np.zeros(0, np.uint64), np.zeros(0, np.int64)) == b""

    def test_single_byte_msb_first(self):
        # code 0b101 of length 3 -> bits 101 then padding -> 0xA0.
        out = pack_bits(np.array([0b101], np.uint64), np.array([3]))
        assert out == bytes([0b10100000])

    def test_two_codes_concatenate(self):
        out = pack_bits(np.array([0b1, 0b01], np.uint64), np.array([1, 2]))
        assert out == bytes([0b10100000])

    def test_zero_length_codes_skipped(self):
        out = pack_bits(np.array([99, 0b11], np.uint64), np.array([0, 2]))
        assert out == bytes([0b11000000])

    def test_total_length_rounds_up_to_bytes(self):
        out = pack_bits(np.array([0b111111111], np.uint64), np.array([9]))
        assert len(out) == 2

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros(3, np.uint64), np.zeros(2, np.int64))

    def test_rejects_over_wide_codes(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([1], np.uint64), np.array([60]))

    def test_masks_high_bits(self):
        # Only the low `length` bits of the code are emitted.
        out = pack_bits(np.array([0b1111], np.uint64), np.array([2]))
        assert out == bytes([0b11000000])

    def test_roundtrip_random(self):
        r = np.random.default_rng(0)
        lengths = r.integers(1, 57, 500)
        codes = np.array(
            [int(r.integers(0, 1 << int(l))) for l in lengths], dtype=np.uint64
        )
        packed = pack_bits(codes, lengths)
        bits = unpack_bits(packed, int(lengths.sum()))
        # Re-read each code with a cursor.
        reader = BitReader(packed)
        for code, length in zip(codes, lengths):
            assert reader.read(int(length)) == int(code)
        assert bits.size == int(lengths.sum())


class TestUnpackBits:
    def test_roundtrip_bytes(self):
        data = bytes(range(16))
        bits = unpack_bits(data)
        assert bits.size == 128
        assert np.packbits(bits).tobytes() == data

    def test_truncation(self):
        bits = unpack_bits(b"\xff", nbits=3)
        assert bits.tolist() == [1, 1, 1]

    def test_over_request_raises(self):
        with pytest.raises(ValueError):
            unpack_bits(b"\xff", nbits=9)


class TestBitWriter:
    def test_len_tracks_bits(self):
        w = BitWriter()
        w.write(3, 2)
        w.write(1, 5)
        assert len(w) == 7

    def test_zero_width_write_is_noop(self):
        w = BitWriter()
        w.write(0, 0)
        assert len(w) == 0
        assert w.getvalue() == b""

    def test_rejects_negative(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(-1, 4)

    def test_write_array(self):
        w = BitWriter()
        w.write_array(np.arange(10), 8)
        r = BitReader(w.getvalue())
        assert r.read_array(10, 8).tolist() == list(range(10))

    def test_write_codes_matches_pack_bits(self):
        codes = np.array([5, 2, 7], np.uint64)
        lengths = np.array([4, 2, 3], np.int64)
        w = BitWriter()
        w.write_codes(codes, lengths)
        assert w.getvalue() == pack_bits(codes, lengths)


class TestBitReader:
    def test_sequential_reads(self):
        w = BitWriter()
        w.write(0b1011, 4)
        w.write(0b01, 2)
        r = BitReader(w.getvalue())
        assert r.read(4) == 0b1011
        assert r.read(2) == 0b01

    def test_read_past_end_raises(self):
        r = BitReader(b"\x00")
        with pytest.raises(EOFError):
            r.read(9)

    def test_read_array_past_end_raises(self):
        r = BitReader(b"\x00")
        with pytest.raises(EOFError):
            r.read_array(3, 4)

    def test_seek(self):
        r = BitReader(b"\xf0")
        r.seek(4)
        assert r.read(4) == 0
        with pytest.raises(ValueError):
            r.seek(99)

    def test_remaining(self):
        r = BitReader(b"\xff\xff")
        r.read(5)
        assert r.remaining == 11

    def test_read_zero_bits(self):
        r = BitReader(b"\xff")
        assert r.read(0) == 0
        assert (r.read_array(4, 0) == 0).all()

    def test_nbits_limit(self):
        r = BitReader(b"\xff", nbits=3)
        assert r.remaining == 3
