"""Unit tests for LZ77, zlib backend, RLE and the payload container."""

import numpy as np
import pytest

from repro.codecs.container import Container
from repro.codecs.interface import get_byte_codec, list_byte_codecs
from repro.codecs.lz77 import LZ77Codec, lz77_compress, lz77_decompress
from repro.codecs.rle import rle_decode, rle_encode
from repro.codecs.zlib_codec import ZlibCodec


class TestLZ77:
    @pytest.mark.parametrize(
        "payload",
        [
            b"",
            b"a",
            b"abcabcabcabc" * 10,
            b"\x00" * 1000,
            bytes(range(256)),
            b"the quick brown fox " * 50,
        ],
        ids=["empty", "single", "periodic", "zeros", "alphabet", "text"],
    )
    def test_roundtrip(self, payload):
        codec = LZ77Codec()
        assert codec.decompress(codec.compress(payload)) == payload

    def test_roundtrip_random_bytes(self):
        r = np.random.default_rng(0)
        payload = bytes(r.integers(0, 256, 5000, dtype=np.uint8))
        codec = LZ77Codec()
        assert codec.decompress(codec.compress(payload)) == payload

    def test_compresses_repetitive_data(self):
        payload = b"scientific floating point data " * 100
        assert len(lz77_compress(payload)) < len(payload) / 3

    def test_overlapping_match(self):
        # Distance < length forces the RLE-style overlapping copy path.
        payload = b"ab" + b"ab" * 200
        assert lz77_decompress(lz77_compress(payload)) == payload

    def test_corrupt_flag_raises(self):
        blob = bytearray(lz77_compress(b"hello world, hello world, hello"))
        # First byte(s) are the varint length; find a token flag and break it.
        blob[1] = 99
        with pytest.raises(ValueError):
            lz77_decompress(bytes(blob))


class TestZlibCodec:
    def test_roundtrip(self):
        payload = b"some scientific bytes" * 40
        codec = ZlibCodec()
        assert codec.decompress(codec.compress(payload)) == payload

    def test_level_validation(self):
        with pytest.raises(ValueError):
            ZlibCodec(level=10)

    def test_registry_contains_both(self):
        names = list_byte_codecs()
        assert "zlib" in names and "lz77" in names

    def test_get_byte_codec_unknown(self):
        with pytest.raises(KeyError):
            get_byte_codec("nope")


class TestRLE:
    def test_empty(self):
        assert rle_decode(rle_encode(np.zeros(0, np.uint8))).size == 0

    def test_constant(self):
        arr = np.full(1000, 7, np.uint8)
        assert (rle_decode(rle_encode(arr)) == arr).all()

    def test_alternating(self):
        arr = np.tile(np.array([0, 1], np.uint8), 500)
        assert (rle_decode(rle_encode(arr)) == arr).all()

    def test_random_runs(self):
        r = np.random.default_rng(1)
        arr = np.repeat(
            r.integers(0, 4, 200).astype(np.uint8), r.integers(1, 100, 200)
        )
        assert (rle_decode(rle_encode(arr)) == arr).all()

    def test_long_runs_compress(self):
        arr = np.zeros(100_000, np.uint8)
        assert len(rle_encode(arr)) < 32


class TestContainer:
    def test_roundtrip(self):
        c = Container()
        c.add("alpha", b"123")
        c.add("beta", b"")
        c.add("gamma", bytes(range(200)))
        parsed = Container.frombytes(c.tobytes())
        assert parsed.names() == ["alpha", "beta", "gamma"]
        assert parsed.get("gamma") == bytes(range(200))

    def test_duplicate_rejected(self):
        c = Container()
        c.add("x", b"1")
        with pytest.raises(KeyError):
            c.add("x", b"2")

    def test_contains(self):
        c = Container()
        c.add("x", b"1")
        assert "x" in c and "y" not in c

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            Container.frombytes(b"XXXX\x01\x00")

    def test_trailing_bytes_detected(self):
        c = Container()
        c.add("x", b"1")
        with pytest.raises(ValueError):
            Container.frombytes(c.tobytes() + b"junk")

    def test_nbytes_matches_serialisation(self):
        c = Container()
        c.add("x", b"abc")
        assert c.nbytes() == len(c.tobytes())
