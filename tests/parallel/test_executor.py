"""Tests for the cancel-aware executors."""

import time

import pytest

from repro.parallel.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    resolve_workers,
)


def _square(x):
    return x * x


def _slow_square(x):
    time.sleep(0.02)
    return x * x


class TestSerialExecutor:
    def test_map_all_order(self):
        ex = SerialExecutor()
        assert ex.map_all(_square, [1, 2, 3]) == [1, 4, 9]

    def test_stop_when_halts_immediately(self):
        ex = SerialExecutor()
        calls = []

        def fn(x):
            calls.append(x)
            return x

        results = ex.run_cancellable(fn, list(range(10)), stop_when=lambda r: r == 3)
        assert calls == [0, 1, 2, 3]
        assert results[-1] == (3, 3)

    def test_no_stop_runs_all(self):
        ex = SerialExecutor()
        results = ex.run_cancellable(_square, [1, 2, 3])
        assert len(results) == 3

    def test_exception_propagates(self):
        ex = SerialExecutor()

        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            ex.run_cancellable(boom, [1])


class TestThreadExecutor:
    def test_map_all(self):
        ex = ThreadExecutor(workers=4)
        assert ex.map_all(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]

    def test_early_stop_cancels_unstarted(self):
        # 1 worker, long tasks: stopping on the first result should leave
        # most of the queue cancelled.
        ex = ThreadExecutor(workers=1)
        results = ex.run_cancellable(
            _slow_square, list(range(20)), stop_when=lambda r: True
        )
        assert len(results) < 20

    def test_results_sorted_by_index(self):
        ex = ThreadExecutor(workers=4)
        results = ex.run_cancellable(_slow_square, [3, 1, 2])
        assert [i for i, _ in results] == [0, 1, 2]

    def test_exception_propagates(self):
        ex = ThreadExecutor(workers=2)

        def boom(x):
            raise ValueError("nope")

        with pytest.raises(ValueError):
            ex.run_cancellable(boom, [1, 2])

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            ThreadExecutor(workers=0)


class TestProcessExecutor:
    def test_map_all(self):
        ex = ProcessExecutor(workers=2)
        assert ex.map_all(_square, [2, 3]) == [4, 9]


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [("serial", SerialExecutor), ("thread", ThreadExecutor), ("process", ProcessExecutor)],
    )
    def test_kinds(self, kind, cls):
        assert isinstance(make_executor(kind), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_executor("gpu")


class TestResolveWorkers:
    def test_none_means_cpu_count(self):
        import os

        expected = os.cpu_count() or 1
        assert resolve_workers(None) == expected
        assert make_executor("thread", workers=None).workers == expected

    @pytest.mark.parametrize("workers", [0, -1, -8])
    def test_non_positive_means_cpu_count(self, workers):
        import os

        assert resolve_workers(workers) == (os.cpu_count() or 1)

    def test_positive_passes_through(self):
        assert resolve_workers(3) == 3
        assert make_executor("thread", workers=3).workers == 3

    @pytest.mark.parametrize("bad", ["four", 2.5, True])
    def test_bad_values_rejected(self, bad):
        with pytest.raises(TypeError, match="workers must be"):
            resolve_workers(bad)
        with pytest.raises(TypeError, match="workers must be"):
            make_executor("thread", workers=bad)

    def test_pool_accepts_none(self):
        import os

        assert ThreadExecutor(workers=None).workers == (os.cpu_count() or 1)

    def test_pool_still_rejects_zero(self):
        # Direct construction stays strict; only the factory treats <= 0
        # as "auto".
        with pytest.raises(ValueError):
            ThreadExecutor(workers=0)
