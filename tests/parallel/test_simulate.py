"""Tests for the simulated-cluster list scheduler."""

import pytest

from repro.parallel.simulate import simulate_makespan, simulate_scaling


class TestMakespan:
    def test_single_worker_sums(self):
        assert simulate_makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_enough_workers_equals_longest(self):
        assert simulate_makespan([1.0, 2.0, 3.0], 3) == 3.0
        assert simulate_makespan([1.0, 2.0, 3.0], 100) == 3.0

    def test_two_workers_greedy(self):
        # Arrival order: w0 gets 3, w1 gets 1 then 2 -> makespan 3.
        assert simulate_makespan([3.0, 1.0, 2.0], 2) == 3.0

    def test_empty(self):
        assert simulate_makespan([], 4) == 0.0

    def test_monotone_in_workers(self):
        durations = [5.0, 1.0, 4.0, 2.0, 2.0, 3.0, 1.0]
        prev = float("inf")
        for w in (1, 2, 3, 4, 8):
            cur = simulate_makespan(durations, w)
            assert cur <= prev
            prev = cur

    def test_floor_is_longest_task(self):
        """The paper's Fig. 8 analysis: runtime is lower-bounded by the
        longest worker task, however many cores are added."""
        durations = [10.0] + [0.5] * 50
        assert simulate_makespan(durations, 1000) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_makespan([1.0], 0)
        with pytest.raises(ValueError):
            simulate_makespan([-1.0], 2)


class TestScaling:
    def test_curve_shape(self):
        durations = [4.0, 3.0, 2.0, 2.0, 1.0, 1.0, 1.0]
        curve = simulate_scaling(durations, [1, 2, 4, 8])
        assert curve[1] == 14.0
        assert curve[8] == 4.0
        assert curve[1] > curve[2] > curve[4] >= curve[8]

    def test_knee_at_longest_task(self):
        durations = [8.0] + [1.0] * 20
        curve = simulate_scaling(durations, [1, 4, 16, 64])
        assert curve[16] == curve[64] == 8.0
