"""Engine mechanics: suppressions, baseline, cache, CLI exit codes."""

from __future__ import annotations

import json

from analysis_helpers import FIXTURES, REPO_ROOT, check_paths, findings_for

from repro.analysis.engine import (
    Finding,
    load_baseline,
    main,
    registered_checkers,
    rule_catalogue,
    run_checks,
    write_baseline,
)

LOCKVIOL = FIXTURES / "lockviol.py"


def test_builtin_suite_registers_all_checkers():
    names = set(registered_checkers())
    assert {"lock-discipline", "lock-order", "monotonic-clock",
            "wire-protocol", "banned-patterns"} <= names
    rules = rule_catalogue()
    for rule in ("LOCK001", "LOCK002", "MONO001", "MONO002",
                 "WIRE001", "WIRE002", "WIRE003",
                 "BAN001", "BAN002", "BAN003"):
        assert rule in rules


def test_finding_key_is_line_independent():
    a = Finding("LOCK001", "x.py", 10, 0, "msg")
    b = Finding("LOCK001", "x.py", 99, 4, "msg")
    assert a.key == b.key


def test_baseline_roundtrip_and_stale_detection(tmp_path):
    report = check_paths(LOCKVIOL)
    assert report.new  # without a baseline, findings are new

    path = tmp_path / "baseline.json"
    write_baseline(str(path), report.findings)
    baseline = load_baseline(str(path))
    rebaselined = check_paths(LOCKVIOL, baseline=baseline)
    assert rebaselined.new == []
    assert len(rebaselined.baselined) == len(report.findings)
    assert rebaselined.stale_baseline == []

    stale = baseline | {"LOCK001:gone.py:never fires"}
    with_stale = check_paths(LOCKVIOL, baseline=stale)
    assert with_stale.stale_baseline == ["LOCK001:gone.py:never fires"]


def test_cache_reuses_file_scope_findings(tmp_path):
    cache = tmp_path / "cache.json"
    first = run_checks([str(LOCKVIOL)], root=str(REPO_ROOT),
                       use_cache=True, cache_path=str(cache))
    assert first.cache_hits == 0
    assert cache.exists()
    second = run_checks([str(LOCKVIOL)], root=str(REPO_ROOT),
                        use_cache=True, cache_path=str(cache))
    assert second.cache_hits == 1
    assert [f.to_dict() for f in second.findings] == \
           [f.to_dict() for f in first.findings]


def test_cache_invalidated_by_content_change(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text("import time\n\ndef f(t0):\n    return time.time() - t0\n")
    cache = tmp_path / "cache.json"
    first = run_checks([str(src)], root=str(tmp_path),
                       use_cache=True, cache_path=str(cache))
    assert len(findings_for("MONO001", first)) == 1
    src.write_text("import time\n\ndef f(t0):\n    return time.monotonic() - t0\n")
    second = run_checks([str(src)], root=str(tmp_path),
                        use_cache=True, cache_path=str(cache))
    assert second.cache_hits == 0
    assert second.findings == []


def test_syntax_error_reported_not_crashed(tmp_path):
    src = tmp_path / "broken.py"
    src.write_text("def f(:\n")
    report = run_checks([str(src)], root=str(tmp_path), use_cache=False)
    assert [f.rule for f in report.findings] == ["PARSE001"]


def test_cli_exit_codes_and_json_output(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    argv = [str(LOCKVIOL), "--root", str(REPO_ROOT), "--no-cache",
            "--baseline", str(baseline)]

    assert main(argv + ["--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts_by_rule"]["LOCK001"] == 2

    assert main(argv + ["--write-baseline"]) == 0
    capsys.readouterr()
    assert main(argv + ["--strict"]) == 0

    # Strict mode fails on stale entries once the violations are gone.
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    stale_argv = [str(clean), "--root", str(tmp_path), "--no-cache",
                  "--baseline", str(baseline)]
    capsys.readouterr()
    assert main(stale_argv) == 0          # non-strict tolerates stale
    assert main(stale_argv + ["--strict"]) == 1


def test_human_output_has_source_excerpt(capsys):
    argv = [str(LOCKVIOL), "--root", str(REPO_ROOT), "--no-cache",
            "--baseline", "/nonexistent.json"]
    assert main(argv) == 1
    out = capsys.readouterr().out
    assert "tests/analysis/fixtures/lockviol.py:" in out
    assert "LOCK001" in out
    assert "| " in out and "^" in out  # diff-style gutter + caret
