"""DEAD001 (__all__ drift): undefined exports, dead exports, exemptions.

The exportdrift fixture is checked with ``root`` pointed at the fixture
package itself (not the repo root): the engine skips ``tests/`` paths as
finding *sources*, and these fixtures deliberately live under tests/.
"""

from __future__ import annotations

from analysis_helpers import FIXTURES, line_of

from repro.analysis.engine import run_checks

DRIFT = FIXTURES / "exportdrift"


def _dead_findings():
    report = run_checks([str(DRIFT)], root=str(DRIFT), use_cache=False)
    return [f for f in report.findings if f.rule == "DEAD001"]


def test_dead001_flags_undefined_and_unused_exports():
    found = _dead_findings()
    by_path = {}
    for f in found:
        by_path.setdefault(f.path, set()).add(f.line)
    assert by_path.get("mod.py") == {
        line_of(DRIFT / "mod.py", "SEEDED: undefined-export"),
        line_of(DRIFT / "mod.py", "SEEDED: unused-export"),
    }, [f"{f.path}:{f.line} {f.message}" for f in found]


def test_dead001_messages_distinguish_the_two_halves():
    messages = {f.message for f in _dead_findings()}
    assert any("'qoph_missing'" in m and "never defines" in m for m in messages)
    assert any("'QophUnused'" in m and "nothing else" in m for m in messages)


def test_dead001_facade_init_exempt_from_unused_but_not_undefined():
    found = _dead_findings()
    init_findings = [f for f in found if f.path == "__init__.py"]
    assert [f.line for f in init_findings] == [
        line_of(DRIFT / "__init__.py", "SEEDED: facade-undefined")]
    assert "'qoph_ghost'" in init_findings[0].message
    # QophUsed is re-exported by the facade and referenced nowhere outside
    # the package — exempt because facades exist for external consumers.
    assert not any("'QophUsed'" in f.message for f in found)


def test_dead001_pep562_getattr_exempts_undefined_half():
    assert not any(f.path == "dynamic.py" for f in _dead_findings())


def test_dead001_suppression_comment_is_honoured():
    assert not any("QophKept" in f.message for f in _dead_findings())
