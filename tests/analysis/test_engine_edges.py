"""Engine edge cases: suppression/baseline overlap, --update-baseline,
--explain, and checker-version cache invalidation."""

from __future__ import annotations

import json

from analysis_helpers import FIXTURES, REPO_ROOT

from repro.analysis import engine
from repro.analysis.engine import (
    CheckReport,
    checker,
    load_baseline,
    main,
    run_checks,
    write_baseline,
)

LOCKVIOL = FIXTURES / "lockviol.py"

_ONE_VIOLATION = "import time\n\ndef f(t0):\n    return time.time() - t0\n"


def _two_files(tmp_path):
    """Two files with one violation each: two distinct baseline keys
    (keys are rule:path:message, so same-file duplicates would collapse)."""
    a, b = tmp_path / "mod_a.py", tmp_path / "mod_b.py"
    a.write_text(_ONE_VIOLATION)
    b.write_text(_ONE_VIOLATION)
    return a, b


def test_suppressed_finding_turns_its_baseline_entry_stale(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text("import time\n\ndef f(t0):\n    return time.time() - t0\n")
    report = run_checks([str(src)], root=str(tmp_path), use_cache=False)
    assert len(report.findings) == 1
    baseline = {report.findings[0].key}

    # Add a same-line suppression: the finding disappears entirely — it is
    # neither new nor baselined, and its baseline entry is now stale.
    src.write_text("import time\n\ndef f(t0):\n"
                   "    return time.time() - t0  # repro: ignore[MONO001]\n")
    after = run_checks([str(src)], root=str(tmp_path), use_cache=False,
                       baseline=baseline)
    assert after.findings == []
    assert after.baselined == []
    assert after.stale_baseline == sorted(baseline)


def test_update_baseline_prunes_stale_but_rejects_new(tmp_path, capsys):
    a, b = _two_files(tmp_path)
    report = run_checks([str(a), str(b)], root=str(tmp_path), use_cache=False)
    keys = sorted({f.key for f in report.findings})
    assert len(keys) == 2

    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "findings": [keys[0], "MONO001:gone.py:never fires"]}))

    argv = [str(a), str(b), "--root", str(tmp_path), "--no-cache",
            "--baseline", str(baseline), "--update-baseline"]
    # The un-baselined second violation still fails the run...
    assert main(argv) == 1
    out = capsys.readouterr().out
    assert "baseline rewritten: 1 entr(ies) kept, 1 stale pruned" in out
    # ...but the stale entry is gone and the new finding was NOT accepted.
    assert load_baseline(str(baseline)) == {keys[0]}


def test_update_baseline_clean_run_exits_zero(tmp_path, capsys):
    a, b = _two_files(tmp_path)
    report = run_checks([str(a), str(b)], root=str(tmp_path), use_cache=False)
    baseline = tmp_path / "baseline.json"
    write_baseline(str(baseline), report.findings)
    stale = load_baseline(str(baseline)) | {"MONO001:gone.py:never fires"}
    baseline.write_text(json.dumps({"findings": sorted(stale)}))

    argv = [str(a), str(b), "--root", str(tmp_path), "--no-cache",
            "--baseline", str(baseline), "--update-baseline", "--strict"]
    assert main(argv) == 0  # strict would fail on stale; the rewrite fixed it first
    capsys.readouterr()
    assert load_baseline(str(baseline)) == {f.key for f in report.findings}


def test_explain_known_rule_prints_examples_and_exits_zero(capsys):
    assert main(["--explain", "RES001"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("RES001  ")
    assert "violates:" in out and "clean:" in out


def test_explain_unknown_rule_lists_catalogue_and_exits_one(capsys):
    assert main(["--explain", "NOPE999"]) == 1
    out = capsys.readouterr().out
    assert "unknown rule 'NOPE999'" in out
    assert "LOCK001" in out  # the catalogue is offered as a hint


def test_every_rule_has_an_explain_example():
    missing = [rule for rule in engine.rule_catalogue()
               if rule not in engine.rule_examples()]
    assert missing == []


def test_checker_version_bump_invalidates_cache(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text("x = 1\n")
    cache = tmp_path / "cache.json"
    calls: list[int] = []

    def register(version: int):
        @checker("tmp-version-probe", scope="file",
                 rules={"TMP001": "test probe"}, version=version)
        def probe(pf):
            calls.append(version)
            return []
        return probe

    try:
        register(1)
        run_checks([str(src)], root=str(tmp_path),
                   use_cache=True, cache_path=str(cache))
        assert calls == [1]
        cached = run_checks([str(src)], root=str(tmp_path),
                            use_cache=True, cache_path=str(cache))
        assert cached.cache_hits == 1
        assert calls == [1]  # cache hit: the checker body never ran

        register(2)  # same name, bumped version -> new fingerprint
        bumped = run_checks([str(src)], root=str(tmp_path),
                            use_cache=True, cache_path=str(cache))
        assert bumped.cache_hits == 0
        assert calls == [1, 2]
    finally:
        engine._CHECKERS.pop("tmp-version-probe", None)


def test_check_report_shape_is_stable():
    report = run_checks([str(LOCKVIOL)], root=str(REPO_ROOT), use_cache=False)
    assert isinstance(report, CheckReport)
    payload = report.to_dict()
    assert set(payload) == {"findings", "new", "baselined", "stale_baseline",
                            "files_checked", "cache_hits", "counts_by_rule"}
