"""BAN001/BAN002/BAN003: banned patterns."""

from __future__ import annotations

from analysis_helpers import FIXTURES, check_paths, findings_for, line_of

BANNED = FIXTURES / "bannedviol.py"


def test_bare_except_flagged():
    report = check_paths(BANNED)
    findings = findings_for("BAN001", report)
    assert len(findings) == 1
    assert findings[0].line == line_of(BANNED, "SEEDED: bare-except")


def test_pickle_loads_flagged_outside_executor():
    report = check_paths(BANNED)
    findings = findings_for("BAN002", report)
    assert len(findings) == 1
    assert findings[0].line == line_of(BANNED, "SEEDED: pickle-loads")
    assert "parallel/executor.py" in findings[0].message


def test_mutable_default_flagged():
    report = check_paths(BANNED)
    findings = findings_for("BAN003", report)
    assert len(findings) == 1
    assert findings[0].line == line_of(BANNED, "SEEDED: mutable-default")
    assert "collect" in findings[0].message


def test_pickle_allowed_in_executor_module():
    from analysis_helpers import SRC

    report = check_paths(SRC / "parallel" / "executor.py")
    assert findings_for("BAN002", report) == []
