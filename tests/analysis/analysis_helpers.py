"""Shared plumbing for the static-analysis tests."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import run_checks

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"
SRC = REPO_ROOT / "src" / "repro"


def check_paths(*paths, baseline=None):
    """Run every checker over ``paths`` with caching off."""
    return run_checks([str(p) for p in paths], root=str(REPO_ROOT),
                      baseline=baseline, use_cache=False)


def findings_for(rule, report):
    return [f for f in report.findings if f.rule == rule]


def line_of(path: Path, marker: str) -> int:
    """1-based line of the seeded-violation marker comment in a fixture."""
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        if marker in text:
            return lineno
    raise AssertionError(f"marker {marker!r} not found in {path}")
