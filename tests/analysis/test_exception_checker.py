"""EXC001 (typed public raises) and EXC002 (swallowed exceptions)."""

from __future__ import annotations

from analysis_helpers import FIXTURES, check_paths, findings_for, line_of

from repro.analysis.engine import ParsedFile, Project
from repro.analysis.exceptions import typed_exception_names

EXCFLOW = FIXTURES / "excflow"
HANDLERS = EXCFLOW / "serve" / "handlers.py"


def _report():
    return check_paths(EXCFLOW)


def test_exc001_flags_untyped_raises_on_public_surface():
    found = findings_for("EXC001", _report())
    lines = {f.line for f in found}
    assert line_of(HANDLERS, "SEEDED: untyped-valueerror") in lines
    assert line_of(HANDLERS, "SEEDED: untyped-keyerror") in lines
    assert len(found) == 2, [f.message for f in found]
    by_line = {f.line: f for f in found}
    value_err = by_line[line_of(HANDLERS, "SEEDED: untyped-valueerror")]
    assert "Handler.submit() raises ValueError" in value_err.message


def test_exc001_allows_typed_private_reraise_and_notimplemented():
    # TypedChild (transitively rooted in the fixture errors.py), the
    # lowercase `raise exc`, NotImplementedError, and _private() all pass:
    # the only EXC001 findings are the two seeded ones.
    messages = [f.message for f in findings_for("EXC001", _report())]
    assert not any("TypedChild" in m or "NotImplementedError" in m
                   or "_private" in m or "rethrow" in m for m in messages)


def test_typed_set_closes_transitively_over_the_fixture():
    paths = [str(EXCFLOW / "errors.py"), str(HANDLERS)]
    project = Project(str(FIXTURES), [ParsedFile(str(FIXTURES), p) for p in paths])
    typed = typed_exception_names(project)
    assert "FixtureError" in typed
    assert "TypedChild" in typed  # defined outside errors.py, rooted by name


def test_exc002_flags_swallowing_handlers_with_readable_labels():
    found = findings_for("EXC002", _report())
    by_line = {f.line: f for f in found}
    single = by_line[line_of(HANDLERS, "SEEDED: swallowed-single")]
    assert "except ZeroDivisionError:" in single.message
    tup = by_line[line_of(HANDLERS, "SEEDED: swallowed-tuple")]
    assert "except (OSError, ValueError):" in tup.message
    assert len(found) == 2, [f.message for f in found]


def test_exc002_suppression_comment_is_honoured():
    # The KeyError swallow carries `# repro: ignore[EXC002]` and must not
    # appear even though its body is identical to the seeded ones.
    assert not any("KeyError" in f.message
                   for f in findings_for("EXC002", _report()))
