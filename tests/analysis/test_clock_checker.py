"""MONO001/MONO002: wall-clock readings must not measure durations."""

from __future__ import annotations

from analysis_helpers import FIXTURES, check_paths, findings_for, line_of

CLOCKVIOL = FIXTURES / "clockviol.py"


def test_wall_clock_subtraction_flagged():
    report = check_paths(CLOCKVIOL)
    findings = findings_for("MONO001", report)
    assert len(findings) == 1
    assert findings[0].line == line_of(CLOCKVIOL, "SEEDED: wall-clock-duration")
    assert findings[0].path == "tests/analysis/fixtures/clockviol.py"
    assert "time.monotonic" in findings[0].message


def test_wall_clock_observe_flagged():
    report = check_paths(CLOCKVIOL)
    findings = findings_for("MONO002", report)
    assert len(findings) == 1
    assert findings[0].line == line_of(CLOCKVIOL, "SEEDED: wall-clock-observe")


def test_plain_wall_stamp_not_flagged():
    report = check_paths(CLOCKVIOL)
    stamp_line = line_of(CLOCKVIOL, '"started_at": time.time()')
    assert stamp_line not in {f.line for f in report.findings}
