"""The real source tree passes its own static analysis.

This is the acceptance gate CI enforces (`repro check --strict`): every
guarded class obeys its declared lock, no wall-clock duration math, the
three wire-protocol copies agree, the lock graph is acyclic, and the
committed baseline is empty (no grandfathered findings).
"""

from __future__ import annotations

from analysis_helpers import REPO_ROOT, SRC, check_paths

from repro.analysis.engine import load_baseline


def test_repo_tree_is_clean():
    report = check_paths(SRC)
    assert report.findings == [], "\n".join(
        f"{f.path}:{f.line} {f.rule} {f.message}" for f in report.findings)
    assert report.files_checked > 100  # the whole package was actually walked


def test_committed_baseline_is_empty_and_fresh():
    baseline = load_baseline(str(REPO_ROOT / "tools" / "check_baseline.json"))
    assert baseline == set()


def test_lock_graph_sees_the_real_cross_class_edges():
    """Guard against the checker passing vacuously: the scheduler really
    does take the queue/pool locks inside its own, and that must show up
    as graph edges (just not as a cycle)."""
    import ast
    import os

    from repro.analysis import locks
    from repro.analysis.engine import ParsedFile, discover_files

    files = [ParsedFile(str(REPO_ROOT), p)
             for p in discover_files([str(SRC)])]
    classes, owners = {}, {}
    for pf in files:
        for info in locks._collect_guarded_classes(pf):
            classes[info.name] = info
            owners[info.name] = pf
    assert {"Scheduler", "JobQueue", "Router", "NodeRegistry", "EvalCache",
            "NodeAgent", "SpanStore", "TraceLogger", "ProcessJobPool",
            "Counter", "Gauge", "Histogram", "MetricFamily",
            "MetricsRegistry"} <= set(classes)
    for info in classes.values():
        for m in locks._methods(info.node):
            info.acquires[m.name] = locks._acquired_locks(m, set(info.locks))
        locks._infer_attr_types(info, set(classes))
    edges = []
    for info in classes.values():
        collector = locks._EdgeCollector(owners[info.name], info, classes, edges)
        for m in locks._methods(info.node):
            for stmt in m.body:
                collector.scan(stmt, ())
    edge_set = {(e.src, e.dst) for e in edges}
    assert ("Scheduler._lock", "JobQueue._cond") in edge_set
    assert ("Scheduler._lock", "ProcessJobPool._lock") in edge_set
    assert locks._find_cycles(edges) == []
