"""The real source tree passes its own static analysis.

This is the acceptance gate CI enforces (`repro check --strict`): every
guarded class obeys its declared lock, no wall-clock duration math, the
three wire-protocol copies agree, the lock graph is acyclic, and the
committed baseline is empty (no grandfathered findings).
"""

from __future__ import annotations

from analysis_helpers import REPO_ROOT, SRC, check_paths

from repro.analysis.engine import load_baseline


def test_repo_tree_is_clean(tmp_path, monkeypatch):
    # Pin the sanitizer report to a path that does not exist, so a stale
    # local .repro_sanitize_report.json (e.g. from a sanitize run that
    # exercised the fixture packages) cannot skew the SAN001 diff here.
    monkeypatch.setenv("REPRO_SANITIZE_REPORT", str(tmp_path / "absent.json"))
    report = check_paths(SRC)
    assert report.findings == [], "\n".join(
        f"{f.path}:{f.line} {f.rule} {f.message}" for f in report.findings)
    assert report.files_checked > 100  # the whole package was actually walked


def test_committed_baseline_is_empty_and_fresh():
    baseline = load_baseline(str(REPO_ROOT / "tools" / "check_baseline.json"))
    assert baseline == set()


def test_lock_graph_sees_the_real_cross_class_edges():
    """Guard against the checker passing vacuously: the scheduler really
    does take the queue/pool locks inside its own, and that must show up
    as graph edges (just not as a cycle)."""
    from repro.analysis import locks
    from repro.analysis.engine import ParsedFile, Project, discover_files

    files = [ParsedFile(str(REPO_ROOT), p)
             for p in discover_files([str(SRC)])]
    project = Project(str(REPO_ROOT), files)
    classes = {info.name
               for pf in files for info in locks._collect_guarded_classes(pf)}
    assert {"Scheduler", "JobQueue", "Router", "NodeRegistry", "EvalCache",
            "NodeAgent", "SpanStore", "TraceLogger", "ProcessJobPool",
            "Counter", "Gauge", "Histogram", "MetricFamily",
            "MetricsRegistry"} <= classes
    edges = locks.collect_lock_edges(project)
    edge_set = {(e.src, e.dst) for e in edges}
    assert ("Scheduler._lock", "JobQueue._cond") in edge_set
    assert ("Scheduler._lock", "ProcessJobPool._lock") in edge_set
    assert locks._find_cycles(edges) == []
