"""Runtime concurrency sanitizer: seeded violations, exact rule ids.

The fixture module (``fixtures/sanviol.py``) is *imported* with the
sanitizer forced active, so ``guarded_by`` installs the descriptors at
import time; its directory is registered as a sanitized root so the
seeded accesses count (frames outside the roots are white-box-exempt).

Every test starts from a clean recorder and drains it afterwards so a
``REPRO_SANITIZE=1`` run of the whole suite does not fail the session on
the violations these tests seed on purpose.  (The sanitizer CI job runs
the serve/gateway/obs/cache shards only, so the resets here never drop
edges that job is collecting.)
"""

from __future__ import annotations

import importlib.util
import json
import sys
import threading

import pytest

from analysis_helpers import FIXTURES, check_paths, findings_for, line_of
from repro.analysis.sanitizer import runtime
from repro.analysis.sanitizer.check import load_observed_edges

SANVIOL = FIXTURES / "sanviol.py"


@pytest.fixture(scope="module")
def sanviol():
    """The fixture module, imported with the sanitizer forced active."""
    runtime.set_active(True)
    runtime.add_root(str(FIXTURES))
    spec = importlib.util.spec_from_file_location("sanviol_fixture", SANVIOL)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    try:
        spec.loader.exec_module(mod)
        yield mod
    finally:
        runtime.reset()  # fixture edges must not leak into session reports
        runtime.remove_root(str(FIXTURES))
        runtime.set_active(None)
        sys.modules.pop(spec.name, None)


@pytest.fixture(autouse=True)
def clean_recorder(sanviol):
    runtime.reset()
    yield
    runtime.drain_violations()


def test_unguarded_augassign_records_read_and_write(sanviol):
    ledger = sanviol.SanLedger()
    ledger.bump_unguarded()
    found = runtime.drain_violations()
    assert [v["rule"] for v in found] == ["SAN101", "SAN101"]
    verbs = {v["message"].split()[1] for v in found}
    assert verbs == {"read", "write"}
    site = f"tests/analysis/fixtures/sanviol.py:{line_of(SANVIOL, 'SEEDED: SAN101 augassign')}"
    assert all(v["site"] == site for v in found)
    assert all("SanLedger.count" in v["message"] and "SanLedger._lock" in v["message"]
               for v in found)


def test_unguarded_read_records_one_violation(sanviol):
    ledger = sanviol.SanLedger()
    ledger.read_unguarded()
    found = runtime.drain_violations()
    assert len(found) == 1
    assert found[0]["rule"] == "SAN101"
    assert "SanLedger.items read" in found[0]["message"]


def test_guarded_access_is_clean(sanviol):
    ledger = sanviol.SanLedger()
    ledger.bump_guarded()
    assert runtime.violations() == []


def test_same_line_suppression_applies_at_runtime(sanviol):
    ledger = sanviol.SanLedger()
    ledger.read_suppressed()
    assert runtime.violations() == []


def test_locked_suffix_method_is_exempt(sanviol):
    ledger = sanviol.SanLedger()
    ledger.read_locked()
    assert runtime.violations() == []


def test_init_frames_are_exempt(sanviol):
    sanviol.SanLedger()  # __init__ writes every guarded field unlocked
    assert runtime.violations() == []


def test_frames_outside_roots_are_exempt(sanviol):
    ledger = sanviol.SanLedger()
    assert ledger.count == 0  # this test file is not a sanitized root
    runtime.remove_root(str(FIXTURES))
    try:
        ledger.bump_unguarded()  # fixture frames no longer sanitized either
    finally:
        runtime.add_root(str(FIXTURES))
    assert runtime.violations() == []


def test_remove_root_refuses_package_root(sanviol):
    runtime.remove_root(runtime._PKG_ROOT)
    assert runtime._PKG_ROOT in runtime._ROOTS


def test_duplicate_violations_dedup(sanviol):
    ledger = sanviol.SanLedger()
    ledger.read_unguarded()
    ledger.read_unguarded()
    assert len(runtime.drain_violations()) == 1


def test_lock_order_cycle_records_san102(sanviol):
    a, b = sanviol.SanAlpha(), sanviol.SanBeta()
    sanviol.order_ab(a, b)
    assert runtime.violations() == []  # one direction alone is fine
    sanviol.order_ba(a, b)
    found = runtime.drain_violations()
    assert [v["rule"] for v in found] == ["SAN102"]
    assert "SanAlpha._alpha_lock" in found[0]["message"]
    assert "SanBeta._beta_lock" in found[0]["message"]
    keys = {(e["src"], e["dst"]) for e in runtime.observed_edges()}
    assert ("SanAlpha._alpha_lock", "SanBeta._beta_lock") in keys
    assert ("SanBeta._beta_lock", "SanAlpha._alpha_lock") in keys


def test_cross_thread_edges_merge_into_one_graph(sanviol):
    a, b = sanviol.SanAlpha(), sanviol.SanBeta()
    t1 = threading.Thread(target=sanviol.order_ab, args=(a, b))
    t1.start()
    t1.join()
    t2 = threading.Thread(target=sanviol.order_ba, args=(a, b))
    t2.start()
    t2.join()
    assert [v["rule"] for v in runtime.drain_violations()] == ["SAN102"]


def test_drain_keeps_edges(sanviol):
    a, b = sanviol.SanAlpha(), sanviol.SanBeta()
    sanviol.order_ab(a, b)
    assert runtime.drain_violations() == []
    assert runtime.violations() == []
    assert len(runtime.observed_edges()) == 1


def test_same_name_nesting_records_no_edge(sanviol):
    # Two instances of one class share the lock *name*; nesting them is
    # the re-entrant pattern the static checker also skips.
    first, second = sanviol.SanLedger(), sanviol.SanLedger()
    with first._lock:
        with second._lock:
            pass
    assert runtime.observed_edges() == []


def test_lock_proxy_ownership(sanviol):
    ledger = sanviol.SanLedger()
    assert not ledger._lock.owned_by_current_thread()
    with ledger._lock:
        assert ledger._lock.owned_by_current_thread()
    assert not ledger._lock.owned_by_current_thread()


def test_instrument_collision_raises(sanviol):
    class Clashing:
        @property
        def count(self):
            return 0

    with pytest.raises(TypeError):
        runtime.instrument_class(Clashing, "_lock", ("count",))


def test_write_report_round_trips_through_loader(sanviol, tmp_path, monkeypatch):
    a, b = sanviol.SanAlpha(), sanviol.SanBeta()
    sanviol.order_ab(a, b)
    report = tmp_path / "san_report.json"
    written = runtime.write_report(str(report))
    assert written == str(report)
    payload = json.loads(report.read_text())
    assert payload["edges"][0]["src"] == "SanAlpha._alpha_lock"
    assert payload["edges"][0]["count"] == 1
    monkeypatch.setenv(runtime.REPORT_ENV, str(report))
    edges = load_observed_edges("unused-root")
    assert [(e["src"], e["dst"]) for e in edges] == [
        ("SanAlpha._alpha_lock", "SanBeta._beta_lock")]


def test_load_observed_edges_tolerates_missing_and_garbage(tmp_path, monkeypatch):
    monkeypatch.delenv(runtime.REPORT_ENV, raising=False)
    assert load_observed_edges(str(tmp_path)) == []
    bad = tmp_path / runtime.DEFAULT_REPORT
    bad.write_text("not json {")
    assert load_observed_edges(str(tmp_path)) == []
    bad.write_text(json.dumps({"edges": "nope"}))
    assert load_observed_edges(str(tmp_path)) == []


def test_san001_flags_edge_missing_from_static_graph(tmp_path, monkeypatch):
    report = tmp_path / "report.json"
    report.write_text(json.dumps({"edges": [
        {"src": "Ghost._lock", "dst": "Phantom._lock", "count": 3,
         "sites": ["tests/analysis/fixtures/lockcycle.py:18"]},
    ]}))
    monkeypatch.setenv(runtime.REPORT_ENV, str(report))
    rep = check_paths(FIXTURES / "lockcycle.py")
    found = findings_for("SAN001", rep)
    assert len(found) == 1
    assert "Ghost._lock -> Phantom._lock" in found[0].message
    # anchored at the first site that resolves inside the project
    assert found[0].path == "tests/analysis/fixtures/lockcycle.py"
    assert found[0].line == 18


def test_san001_clean_when_observed_subset_of_static(tmp_path, monkeypatch):
    report = tmp_path / "report.json"
    report.write_text(json.dumps({"edges": [
        {"src": "Alpha._lock", "dst": "Beta._lock", "count": 1, "sites": []},
    ]}))
    monkeypatch.setenv(runtime.REPORT_ENV, str(report))
    rep = check_paths(FIXTURES / "lockcycle.py")
    assert findings_for("SAN001", rep) == []


def test_suppress_regex_stays_in_sync_with_engine():
    from repro.analysis import engine

    assert engine._SUPPRESS_RE.pattern == runtime._SUPPRESS_RE.pattern
