"""WIRE001/WIRE002/WIRE003: wire-protocol drift detection."""

from __future__ import annotations

from analysis_helpers import FIXTURES, check_paths, findings_for, line_of

WIREDRIFT = FIXTURES / "wiredrift"
DRIFT_CLIENT = WIREDRIFT / "serve" / "client.py"


def test_drifted_route_flagged_at_client_call_site():
    report = check_paths(WIREDRIFT)
    findings = findings_for("WIRE001", report)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "tests/analysis/fixtures/wiredrift/serve/client.py"
    assert finding.line == line_of(DRIFT_CLIENT, "SEEDED: route-drift")
    assert "/resultz/" in finding.message


def test_consumed_ticket_key_missing_from_producer_flagged():
    report = check_paths(WIREDRIFT)
    findings = findings_for("WIRE002", report)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.line == line_of(DRIFT_CLIENT, "SEEDED: ticket-key-drift")
    assert '"node"' in finding.message


def test_handled_route_not_flagged():
    # /submit exists on both sides: no finding may mention it.
    report = check_paths(WIREDRIFT)
    assert not any("'/submit'" in f.message
                   for f in findings_for("WIRE001", report))


def test_report_schema_agreement_on_real_tree(tmp_path):
    """WIRE003 is quiet on api/report.py and loud when a field is dropped."""
    from analysis_helpers import SRC

    report = check_paths(SRC / "api" / "report.py")
    assert findings_for("WIRE003", report) == []

    broken = tmp_path / "api" / "report.py"
    broken.parent.mkdir(parents=True)
    broken.write_text(
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class TinyReport:\n"
        "    ratio: float\n"
        "    error_bound: float\n"
        "    def to_dict(self):\n"
        '        return {"kind": "tiny", "ratio": self.ratio}\n'
    )
    from repro.analysis.engine import run_checks

    broken_report = run_checks([str(tmp_path)], root=str(tmp_path),
                               use_cache=False)
    wire3 = [f for f in broken_report.findings if f.rule == "WIRE003"]
    assert len(wire3) == 1
    assert "error_bound" in wire3[0].message
