"""RES001 (leaked OS handles) plus the ChunkReader lifecycle it motivated."""

from __future__ import annotations

import numpy as np
import pytest

from analysis_helpers import FIXTURES, check_paths, findings_for, line_of

from repro.stream.chunks import ChunkReader

RESVIOL = FIXTURES / "resourceviol.py"


def _res_findings():
    return findings_for("RES001", check_paths(RESVIOL))


def test_res001_flags_exactly_the_seeded_leaks():
    found = _res_findings()
    lines = {f.line for f in found}
    assert lines == {
        line_of(RESVIOL, "SEEDED: leaked-open"),
        line_of(RESVIOL, "SEEDED: leaked-call-expr"),
        line_of(RESVIOL, "SEEDED: leaked-socket"),
    }, [f"{f.line}: {f.message}" for f in found]


def test_res001_names_the_producer_in_the_message():
    by_line = {f.line: f for f in _res_findings()}
    assert "open(...)" in by_line[line_of(RESVIOL, "SEEDED: leaked-open")].message
    assert "socket.socket(...)" in by_line[line_of(RESVIOL, "SEEDED: leaked-socket")].message


# --- ChunkReader regression tests (the real fix behind the rule) ---------


@pytest.fixture()
def npy_field(tmp_path):
    data = np.arange(48, dtype=np.float32).reshape(6, 8)
    path = tmp_path / "field.npy"
    np.save(path, data)
    return path, data


def test_chunkreader_close_is_idempotent_and_observable(npy_field):
    path, _ = npy_field
    reader = ChunkReader(path, chunk_shape=(3, 8))
    assert not reader.closed
    reader.close()
    assert reader.closed
    reader.close()  # idempotent
    assert reader.closed


def test_chunkreader_context_manager_closes(npy_field):
    path, data = npy_field
    with ChunkReader(path, chunk_shape=(3, 8)) as reader:
        spec = reader.specs[0]
        np.testing.assert_array_equal(reader.read(spec), data[spec.slices])
    assert reader.closed


def test_chunkreader_read_after_close_raises(npy_field):
    path, _ = npy_field
    reader = ChunkReader(path, chunk_shape=(3, 8))
    spec = reader.specs[0]
    reader.close()
    with pytest.raises(ValueError, match="closed ChunkReader"):
        reader.read(spec)


def test_chunkreader_geometry_survives_close(npy_field):
    path, data = npy_field
    reader = ChunkReader(path, chunk_shape=(3, 8))
    reader.close()
    assert reader.shape == data.shape
    assert reader.dtype == data.dtype
    assert reader.nbytes == data.nbytes


def test_chunkreader_raw_memmap_closes(tmp_path):
    data = np.arange(24, dtype=np.float64).reshape(4, 6)
    path = tmp_path / "field.bin"
    data.tofile(path)
    with ChunkReader(path, shape=(4, 6), dtype=np.float64) as reader:
        np.testing.assert_array_equal(reader.read(reader.specs[0]), data)
    assert reader.closed


def test_chunkreader_init_failure_does_not_leak(npy_field):
    path, _ = npy_field
    # Bad chunk geometry: validation fails *after* the map is opened; the
    # constructor must release it on the way out.
    with pytest.raises(ValueError):
        ChunkReader(path, chunk_shape=(3,))  # dimensionality mismatch
    with pytest.raises(ValueError):
        ChunkReader(path, chunk_shape=(3, 8), max_chunk_bytes=64)  # both args


def test_chunkreader_in_memory_array_close_is_noop():
    data = np.arange(10, dtype=np.float32)
    reader = ChunkReader(data, chunk_shape=(4,))
    reader.close()
    assert reader.closed  # and the caller's array is untouched
    np.testing.assert_array_equal(data, np.arange(10, dtype=np.float32))
