"""LOCK001/LOCK002: guarded-attribute discipline and lock-order cycles."""

from __future__ import annotations

from analysis_helpers import FIXTURES, check_paths, findings_for, line_of

from repro.util.concurrency import guarded_by

LOCKVIOL = FIXTURES / "lockviol.py"
LOCKCYCLE = FIXTURES / "lockcycle.py"


class TestGuardedByDecorator:
    def test_records_metadata_without_wrapping(self):
        @guarded_by("_lock", "a", "b")
        class Thing:
            pass

        assert Thing.__guarded_fields__ == {"a": "_lock", "b": "_lock"}
        assert Thing.__guard_locks__ == ("_lock",)

    def test_stacked_decorators_merge(self):
        @guarded_by("_lock", "a")
        @guarded_by("_count_lock", "n")
        class Thing:
            pass

        assert Thing.__guarded_fields__ == {"a": "_lock", "n": "_count_lock"}
        assert set(Thing.__guard_locks__) == {"_lock", "_count_lock"}

    def test_rejects_non_identifiers(self):
        import pytest

        with pytest.raises(ValueError):
            guarded_by("not an attr", "x")
        with pytest.raises(ValueError):
            guarded_by("_lock", "not an attr")


class TestLockDiscipline:
    def test_unguarded_read_flagged_with_exact_location(self):
        report = check_paths(LOCKVIOL)
        lock_findings = findings_for("LOCK001", report)
        lines = {f.line for f in lock_findings}
        assert line_of(LOCKVIOL, "SEEDED: unguarded-read") in lines
        anchor = next(f for f in lock_findings
                      if f.line == line_of(LOCKVIOL, "SEEDED: unguarded-read"))
        assert anchor.path == "tests/analysis/fixtures/lockviol.py"
        assert "Ledger.total" in anchor.message
        assert "Ledger._lock" in anchor.message

    def test_locked_call_without_lock_flagged(self):
        report = check_paths(LOCKVIOL)
        lines = {f.line for f in findings_for("LOCK001", report)}
        assert line_of(LOCKVIOL, "SEEDED: locked-call-without-lock") in lines

    def test_suppression_comment_silences_the_rule(self):
        report = check_paths(LOCKVIOL)
        suppressed_line = line_of(LOCKVIOL, "repro: ignore[LOCK001]")
        assert suppressed_line not in {f.line for f in report.findings}

    def test_guarded_accesses_are_clean(self):
        # Exactly the two seeded violations — add() and __init__ are fine.
        report = check_paths(LOCKVIOL)
        assert len(findings_for("LOCK001", report)) == 2


class TestLockOrder:
    def test_synthetic_ab_ba_cycle_rejected(self):
        report = check_paths(LOCKCYCLE)
        cycles = findings_for("LOCK002", report)
        assert len(cycles) == 1
        finding = cycles[0]
        assert finding.path == "tests/analysis/fixtures/lockcycle.py"
        assert "Alpha._lock" in finding.message
        assert "Beta._lock" in finding.message
        assert "cycle" in finding.message

    def test_cycle_anchor_points_at_an_acquisition_site(self):
        report = check_paths(LOCKCYCLE)
        finding = findings_for("LOCK002", report)[0]
        acquire_lines = {line_of(LOCKCYCLE, "SEEDED: Alpha._lock -> Beta._lock"),
                         line_of(LOCKCYCLE, "SEEDED: Beta._lock -> Alpha._lock")}
        # The anchor is the `with` statement wrapping one of the seeded
        # cross-class calls (one or two lines above the marker).
        assert any(abs(finding.line - line) <= 2 for line in acquire_lines)

    def test_one_directional_edge_is_not_a_cycle(self):
        report = check_paths(FIXTURES / "lockviol.py")
        assert findings_for("LOCK002", report) == []
