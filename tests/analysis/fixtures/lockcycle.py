"""Seeded A->B / B->A lock-order cycle (checker fixture — never run)."""

import threading

from repro.util.concurrency import guarded_by


@guarded_by("_lock", "value")
class Alpha:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0
        self.beta = Beta()

    def bump(self):
        with self._lock:
            self.value += 1
            self.beta.bump()  # SEEDED: Alpha._lock -> Beta._lock


@guarded_by("_lock", "value")
class Beta:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0
        self.alpha = Alpha()

    def bump(self):
        with self._lock:
            self.value += 1
            self.alpha.bump()  # SEEDED: Beta._lock -> Alpha._lock
