"""Runtime-sanitizer fixture: seeded guarded-field and lock-order abuses.

Imported (not just parsed) by test_sanitizer_runtime.py with the sanitizer
forced active, so ``guarded_by`` instruments the classes at import time.
The seeded accesses below violate the declared discipline on purpose; the
tests assert the exact rule ids the recorder produces.  This module is
never statically checked, so the deliberate LOCK001 violations stay out
of the repo-tree findings.
"""

import threading

from repro.util.concurrency import guarded_by


@guarded_by("_lock", "count", "items")
class SanLedger:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.items = []

    def bump_unguarded(self):
        self.count += 1  # SEEDED: SAN101 augassign (read + write)

    def read_unguarded(self):
        return len(self.items)  # SEEDED: SAN101 read

    def bump_guarded(self):
        with self._lock:
            self.count += 1

    def read_suppressed(self):
        return self.count  # repro: ignore[SAN101] torn read by design

    def read_locked(self):
        # ``*_locked`` suffix: caller promises the lock is already held.
        return self.count


@guarded_by("_alpha_lock", "alpha_value")
class SanAlpha:
    def __init__(self):
        self._alpha_lock = threading.Lock()
        self.alpha_value = 0


@guarded_by("_beta_lock", "beta_value")
class SanBeta:
    def __init__(self):
        self._beta_lock = threading.Lock()
        self.beta_value = 0


def order_ab(a, b):
    with a._alpha_lock:
        with b._beta_lock:
            pass


def order_ba(a, b):
    with b._beta_lock:
        with a._alpha_lock:
            pass  # SEEDED: SAN102 — reverses the A->B order above
