"""Seeded monotonic-clock violations (checker fixture — never run)."""

import time


def elapsed_wall(t0):
    return time.time() - t0  # SEEDED: wall-clock-duration


def observe_stamp(histogram):
    histogram.observe(time.time())  # SEEDED: wall-clock-observe


def stamp_only():
    # A plain wall stamp is fine — must NOT be flagged.
    return {"started_at": time.time()}
