"""Typed-error roots for the exception-flow fixture project."""


class FixtureError(Exception):
    """Root of the fixture's typed hierarchy (plays the ReproError role)."""
