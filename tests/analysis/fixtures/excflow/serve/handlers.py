"""Seeded EXC001/EXC002 violations — parsed by the checker, never imported."""

from ..errors import FixtureError


class TypedChild(FixtureError):
    """Typed transitively: FixtureError is defined in the fixture errors.py."""


class Handler:
    def submit(self, payload):
        if not payload:
            raise ValueError("empty payload")  # SEEDED: untyped-valueerror
        return payload

    def wait(self, job_id):
        raise KeyError(job_id)  # SEEDED: untyped-keyerror

    def typed_ok(self):
        raise TypedChild("typed subclasses are fine")

    def rethrow(self, exc):
        raise exc  # lowercase variable re-raise: allowed

    def unimplemented(self):
        raise NotImplementedError("always allowed")

    def _private(self):
        raise RuntimeError("private methods are not public surface")


def swallow_demo():
    try:
        1 / 0
    except ZeroDivisionError:  # SEEDED: swallowed-single
        pass
    try:
        1 / 0
    except (OSError, ValueError):  # SEEDED: swallowed-tuple
        pass
    try:
        1 / 0
    except KeyError:  # repro: ignore[EXC002] deliberate best-effort swallow
        pass
