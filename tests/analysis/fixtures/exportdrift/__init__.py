"""Facade __init__: unused re-exports are exempt, undefined ones are not."""

from .mod import QophUsed

__all__ = [
    "QophUsed",
    "qoph_ghost",  # SEEDED: facade-undefined
]
