"""Seeded DEAD001 violations — parsed by the checker, never imported."""

__all__ = [
    "QophUsed",
    "qoph_missing",  # SEEDED: undefined-export
    "QophUnused",  # SEEDED: unused-export
    "QophKept",  # repro: ignore[DEAD001] kept for external consumers
]


class QophUsed:
    """Imported by user.py and the package facade: alive."""


class QophUnused:
    """Exported but referenced nowhere: dead."""


class QophKept:
    """Unused too, but its __all__ entry carries a suppression."""
