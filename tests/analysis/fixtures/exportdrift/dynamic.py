"""PEP 562 lazy module: the undefined half of DEAD001 must not fire here."""

__all__ = ["qoph_lazy"]


def __getattr__(name):
    raise AttributeError(name)
