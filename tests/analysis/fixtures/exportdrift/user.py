"""References that keep the 'used' exports alive in the usage pass."""

from .dynamic import qoph_lazy
from .mod import QophUsed


def use_them():
    return QophUsed, qoph_lazy
