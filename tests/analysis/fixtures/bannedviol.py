"""Seeded banned patterns (checker fixture — never run)."""

import pickle


def risky(raw):
    try:
        return pickle.loads(raw)  # SEEDED: pickle-loads
    except:  # SEEDED: bare-except  # noqa: E722
        return None


def collect(item, bucket=[]):  # SEEDED: mutable-default
    bucket.append(item)
    return bucket
