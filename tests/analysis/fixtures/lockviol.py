"""Seeded LOCK001 violations (checker fixture — never imported at runtime)."""

import threading

from repro.util.concurrency import guarded_by


@guarded_by("_lock", "items", "total")
class Ledger:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []
        self.total = 0

    def add(self, x):
        with self._lock:
            self.items.append(x)
            self.total += x

    def peek(self):
        return self.total  # SEEDED: unguarded-read

    def peek_suppressed(self):
        return self.total  # repro: ignore[LOCK001]

    def drain_locked(self):
        out = list(self.items)
        self.items.clear()
        return out

    def drain(self):
        return self.drain_locked()  # SEEDED: locked-call-without-lock
