"""Drifted-endpoint fixture: a node server missing routes the client uses."""


class _Handler:
    def do_POST(self):
        if self.path == "/submit":
            self._send(202, {"job_id": "j-1", "state": "queued"})
            return
        self._send(404, {"error": "unknown"})

    def do_GET(self):
        if self.path.startswith("/status/"):
            self._send(200, {"job_id": "j-1", "state": "queued"})
            return
        self._send(404, {"error": "unknown"})
