"""Drifted-endpoint fixture: a client using a route the server lacks."""


class Client:
    def submit(self):
        status, ticket = self._request("POST", "/submit")
        return ticket["node"]  # SEEDED: ticket-key-drift

    def result(self, job_id):
        return self._request("GET", f"/resultz/{job_id}")  # SEEDED: route-drift
