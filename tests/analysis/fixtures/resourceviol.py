"""Seeded RES001 violations — parsed by the checker, never imported."""

import contextlib
import socket

import numpy as np


def leak_open(path):
    fh = open(path)  # SEEDED: leaked-open
    return fh.read()


def leak_expr(path):
    return open(path).read()  # SEEDED: leaked-call-expr


def leak_socket():
    s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)  # SEEDED: leaked-socket
    s.connect(("localhost", 1))


def ok_with(path):
    with open(path) as fh:
        return fh.read()


def ok_closing(path, shape, dtype):
    with contextlib.closing(np.memmap(path, mode="r", shape=shape, dtype=dtype)) as data:
        return float(data.sum())


def ok_try_finally(path):
    fh = open(path)
    try:
        return fh.read()
    finally:
        fh.close()


def ok_return(path):
    return open(path)  # ownership transferred to the caller


def ok_yield(path):
    fh = open(path)
    yield fh  # ownership transferred to the consumer


class Owner:
    """self-assignment to a close()-owning class is an accepted lifecycle."""

    def __init__(self, path):
        self._fh = open(path)

    def close(self):
        self._fh.close()
