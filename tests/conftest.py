"""Shared fixtures: deterministic sample fields of every supported shape.

Also the pytest half of the runtime concurrency sanitizer: when the
suite runs with ``REPRO_SANITIZE=1``, guarded classes are instrumented
at import time (see ``repro.util.concurrency.guarded_by``); this plugin
writes the observed lock-order graph to the ``REPRO_SANITIZE_REPORT``
path at session end and fails the session if any guarded-access or
lock-inversion violation was recorded.
"""

from __future__ import annotations

import os

import numpy as np
import pytest


def _sanitizer_runtime():
    """The sanitizer runtime module, or None when not opted in."""
    if os.environ.get("REPRO_SANITIZE", "").strip() in ("", "0", "false"):
        return None
    from repro.analysis.sanitizer import runtime

    return runtime if runtime.is_active() else None


def pytest_sessionstart(session):
    runtime = _sanitizer_runtime()
    if runtime is not None:
        runtime.reset()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    runtime = _sanitizer_runtime()
    if runtime is None:
        return
    path = runtime.write_report()
    found = runtime.violations()
    terminalreporter.write_line(
        f"repro sanitizer: {len(runtime.observed_edges())} observed "
        f"lock-order edge(s), {len(found)} violation(s) -> {path}")
    for v in found:
        terminalreporter.write_line(
            f"  {v['rule']} {v['site']}: {v['message']}", red=True)


def pytest_sessionfinish(session, exitstatus):
    runtime = _sanitizer_runtime()
    if runtime is None:
        return
    if runtime.violations() and session.exitstatus == 0:
        session.exitstatus = 1


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def _smooth(shape: tuple[int, ...], seed: int, noise: float = 0.01) -> np.ndarray:
    """Band-limited smooth field + mild noise, float32."""
    r = np.random.default_rng(seed)
    axes = np.meshgrid(
        *(np.linspace(0, 2 * np.pi, s, endpoint=False) for s in shape), indexing="ij"
    )
    out = np.zeros(shape)
    for m in range(8):
        k = r.uniform(0.5, 3.0, len(shape))
        phase = r.uniform(0, 2 * np.pi)
        acc = np.zeros(shape)
        for d in range(len(shape)):
            acc = acc + k[d] * axes[d]
        out += np.sin(acc + phase) / (m + 1)
    out += noise * r.standard_normal(shape)
    return out.astype(np.float32)


@pytest.fixture(scope="session")
def smooth3d() -> np.ndarray:
    return _smooth((24, 24, 12), seed=1)


@pytest.fixture(scope="session")
def smooth2d() -> np.ndarray:
    return _smooth((48, 40), seed=2)


@pytest.fixture(scope="session")
def smooth1d() -> np.ndarray:
    return _smooth((4000,), seed=3)


@pytest.fixture(scope="session")
def sparse3d() -> np.ndarray:
    """Cloud-like sparse field: mostly a constant floor."""
    base = _smooth((24, 24, 12), seed=4, noise=0.0)
    return np.where(base > 0.5, base, np.float32(0.0)).astype(np.float32)


@pytest.fixture(scope="session")
def rough1d() -> np.ndarray:
    """High-entropy 1D data (HACC-like positions)."""
    r = np.random.default_rng(5)
    return r.uniform(0, 64, 5000).astype(np.float32)


@pytest.fixture(scope="session")
def smooth3d_f64(smooth3d) -> np.ndarray:
    return smooth3d.astype(np.float64)
