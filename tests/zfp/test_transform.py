"""Unit tests for the ZFP block transform and fixed-point layers."""

import numpy as np
import pytest

from repro.zfp.fixedpoint import (
    FRAC_BITS,
    block_exponents,
    from_fixed,
    from_negabinary,
    msb_positions,
    to_fixed,
    to_negabinary,
)
from repro.zfp.transform import fwd_lift, fwd_transform, inv_lift, inv_transform, sequency_order


class TestLift:
    def test_near_inverse_small_error(self):
        # ZFP's lifting is NOT bit-exact invertible (the >>1 steps drop
        # parity bits); the documented contract is a few-LSB residual.
        r = np.random.default_rng(0)
        v = r.integers(-(2**40), 2**40, (500, 4)).astype(np.int64)
        err = np.abs(inv_lift(fwd_lift(v)) - v).max()
        assert err <= 64  # few LSBs out of 2**40 magnitude

    def test_constant_vector_concentrates_energy(self):
        v = np.full((1, 4), 1 << 20, dtype=np.int64)
        out = fwd_lift(v)[0]
        assert out[0] == 1 << 20
        assert np.abs(out[1:]).max() <= 1  # AC coefficients collapse

    def test_linear_ramp_small_high_frequencies(self):
        v = (np.arange(4, dtype=np.int64) * (1 << 20))[None, :]
        out = fwd_lift(v)[0]
        # DC and first AC dominate; highest frequency is tiny.
        assert abs(int(out[3])) < abs(int(out[0]))


class TestBlockTransform:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_near_inverse(self, ndim):
        r = np.random.default_rng(1)
        shape = (50,) + (4,) * ndim
        v = r.integers(-(2**40), 2**40, shape).astype(np.int64)
        err = np.abs(inv_transform(fwd_transform(v)) - v).max()
        assert err <= 256

    def test_smooth_blocks_decay_in_sequency_order(self):
        x = np.linspace(0, 1, 4)
        grid = np.add.outer(np.add.outer(x, x), x)
        block = (grid[None] * (1 << 30)).astype(np.int64)
        coeff = fwd_transform(block).reshape(1, 64)[:, sequency_order(3)][0]
        head = np.abs(coeff[:8]).max()
        tail = np.abs(coeff[32:]).max()
        assert tail < head / 16


class TestSequencyOrder:
    def test_permutation(self):
        for ndim in (1, 2, 3):
            perm = sequency_order(ndim)
            assert np.sort(perm).tolist() == list(range(4**ndim))

    def test_total_frequency_nondecreasing(self):
        perm = sequency_order(3)
        freqs = np.indices((4, 4, 4)).reshape(3, -1).sum(axis=0)
        assert (np.diff(freqs[perm]) >= 0).all()

    def test_dc_first(self):
        assert sequency_order(2)[0] == 0


class TestFixedPoint:
    def test_block_exponents_power_bound(self):
        blocks = np.array([[0.9, -1.6, 0.1, 0.0]])
        e = block_exponents(blocks)
        assert np.abs(blocks[0]).max() < 2.0 ** e[0]
        assert np.abs(blocks[0]).max() >= 2.0 ** (e[0] - 1)

    def test_zero_block_exponent(self):
        assert block_exponents(np.zeros((1, 4)))[0] == 0

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            block_exponents(np.array([[np.nan, 0, 0, 0]]))

    def test_to_from_fixed_roundtrip(self):
        r = np.random.default_rng(2)
        blocks = r.normal(0, 100, (20, 4, 4))
        e = block_exponents(blocks)
        recon = from_fixed(to_fixed(blocks, e), e)
        # Rounding error is at most half a fixed-point ULP per value.
        ulp = 2.0 ** (e.astype(float) - FRAC_BITS)
        assert (np.abs(recon - blocks).reshape(20, -1).max(axis=1) <= ulp).all()

    def test_negabinary_roundtrip(self):
        r = np.random.default_rng(3)
        v = r.integers(-(2**45), 2**45, 10_000)
        assert (from_negabinary(to_negabinary(v)) == v).all()

    def test_negabinary_nonnegative_representation(self):
        v = np.array([-5, -1, 0, 1, 5], dtype=np.int64)
        neg = to_negabinary(v)
        # Negabinary magnitudes stay within ~2x the absolute value.
        assert (neg < 2**48).all()

    def test_msb_positions(self):
        assert msb_positions(np.array([0], dtype=np.uint64))[0] == -1
        assert msb_positions(np.array([1], dtype=np.uint64))[0] == 0
        assert msb_positions(np.array([0b1000_0000], dtype=np.uint64))[0] == 7
        assert msb_positions(np.array([2**52], dtype=np.uint64))[0] == 52
