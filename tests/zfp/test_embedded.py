"""Unit tests for the vectorised embedded plane coding."""

import numpy as np

from repro.zfp.embedded import (
    decode_plane_bits,
    encode_plane_bits,
    rate_limited_nplanes,
    suffix_max,
    unit_counts,
    unit_layout,
)
from repro.zfp.fixedpoint import msb_positions


def _setup(neg):
    msb = msb_positions(neg)
    smax = suffix_max(msb)
    kmax = (smax[:, 0] + 1).astype(np.int64)
    return msb, smax, kmax


class TestSuffixMax:
    def test_nonincreasing_rows(self):
        r = np.random.default_rng(0)
        msb = r.integers(-1, 40, (10, 16))
        smax = suffix_max(msb)
        assert (np.diff(smax, axis=1) <= 0).all()

    def test_matches_naive(self):
        msb = np.array([[3, -1, 7, 2]])
        assert suffix_max(msb)[0].tolist() == [7, 7, 7, 2]


class TestUnitLayout:
    def test_planes_descend_from_kmax(self):
        kmax = np.array([3, 1], dtype=np.int64)
        nplanes = np.array([2, 1], dtype=np.int64)
        ub, up = unit_layout(kmax, nplanes)
        assert ub.tolist() == [0, 0, 1]
        assert up.tolist() == [2, 1, 0]

    def test_empty(self):
        ub, up = unit_layout(np.zeros(3, np.int64), np.zeros(3, np.int64))
        assert ub.size == 0 and up.size == 0


class TestUnitCounts:
    def test_counts_match_definition(self):
        neg = np.array([[0b1000, 0b100, 0b1, 0]], dtype=np.uint64)
        msb, smax, kmax = _setup(neg)
        ub, up = unit_layout(kmax, kmax)  # all planes
        counts = unit_counts(smax, ub, up)
        # Plane 3: only coeff 0 -> m=1; plane 2: suffix_max >= 2 for 0,1 -> 2;
        # plane 1: still 2; plane 0: coeff 2 significant -> 3.
        assert counts.tolist() == [1, 2, 2, 3]


class TestRoundtrip:
    def test_full_precision_roundtrip(self):
        r = np.random.default_rng(1)
        neg = r.integers(0, 2**45, (30, 64)).astype(np.uint64)
        msb, smax, kmax = _setup(neg)
        ub, up = unit_layout(kmax, kmax)
        counts = unit_counts(smax, ub, up)
        bits = encode_plane_bits(neg, ub, up, counts)
        out = decode_plane_bits(bits, ub, up, counts, 30, 64)
        assert (out == neg).all()

    def test_truncated_planes_zero_low_bits(self):
        neg = np.array([[0b1111]], dtype=np.uint64)
        msb, smax, kmax = _setup(neg)
        nplanes = np.array([2], dtype=np.int64)  # keep planes 3 and 2 only
        ub, up = unit_layout(kmax, nplanes)
        counts = unit_counts(smax, ub, up)
        bits = encode_plane_bits(neg, ub, up, counts)
        out = decode_plane_bits(bits, ub, up, counts, 1, 1)
        assert out[0, 0] == 0b1100

    def test_zero_blocks_produce_no_bits(self):
        neg = np.zeros((5, 16), dtype=np.uint64)
        msb, smax, kmax = _setup(neg)
        assert kmax.tolist() == [0] * 5
        ub, up = unit_layout(kmax, kmax)
        counts = unit_counts(smax, ub, up)
        assert encode_plane_bits(neg, ub, up, counts).size == 0


class TestRateLimit:
    def test_budget_zero_keeps_nothing(self):
        neg = np.array([[2**30, 5, 1, 0]], dtype=np.uint64)
        msb, smax, kmax = _setup(neg)
        assert rate_limited_nplanes(smax, kmax, 0).tolist() == [0]

    def test_huge_budget_keeps_everything(self):
        neg = np.array([[2**30, 5, 1, 0]], dtype=np.uint64)
        msb, smax, kmax = _setup(neg)
        assert rate_limited_nplanes(smax, kmax, 10**9).tolist() == kmax.tolist()

    def test_cost_model_respected(self):
        r = np.random.default_rng(2)
        neg = r.integers(0, 2**20, (8, 16)).astype(np.uint64)
        msb, smax, kmax = _setup(neg)
        budget = 120
        nplanes = rate_limited_nplanes(smax, kmax, budget)
        ub, up = unit_layout(kmax, nplanes)
        counts = unit_counts(smax, ub, up)
        # Per-block cost = sum over its units of (7 + m) <= budget.
        for b in range(8):
            cost = int(((counts + 7) * (ub == b)).sum())
            assert cost <= budget

    def test_monotone_in_budget(self):
        r = np.random.default_rng(3)
        neg = r.integers(0, 2**25, (6, 16)).astype(np.uint64)
        msb, smax, kmax = _setup(neg)
        prev = np.zeros(6, np.int64)
        for budget in (0, 50, 100, 200, 400, 10**6):
            cur = rate_limited_nplanes(smax, kmax, budget)
            assert (cur >= prev).all()
            prev = cur
