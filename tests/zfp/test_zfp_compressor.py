"""Behavioural tests for ZFP accuracy and fixed-rate modes."""

import numpy as np
import pytest

from repro.codecs.container import Container
from repro.pressio import make_compressor
from repro.zfp.compressor import ZFPCompressor, ZFPFixedRateCompressor


def _maxerr(a, b):
    return float(np.abs(a.astype(np.float64) - b.astype(np.float64)).max())


class TestAccuracyMode:
    @pytest.mark.parametrize("eb", [1e-4, 1e-3, 1e-2, 1e-1, 1.0])
    def test_error_bound_3d(self, smooth3d, eb):
        c = ZFPCompressor(error_bound=eb)
        assert _maxerr(smooth3d, c.decompress(c.compress(smooth3d))) <= eb

    def test_error_bound_2d(self, smooth2d):
        c = ZFPCompressor(error_bound=1e-3)
        assert _maxerr(smooth2d, c.decompress(c.compress(smooth2d))) <= 1e-3

    def test_error_bound_1d(self, smooth1d):
        c = ZFPCompressor(error_bound=1e-3)
        assert _maxerr(smooth1d, c.decompress(c.compress(smooth1d))) <= 1e-3

    def test_error_bound_sparse(self, sparse3d):
        c = ZFPCompressor(error_bound=1e-3)
        assert _maxerr(sparse3d, c.decompress(c.compress(sparse3d))) <= 1e-3

    def test_float64(self, smooth3d_f64):
        c = ZFPCompressor(error_bound=1e-8)
        recon = c.decompress(c.compress(smooth3d_f64))
        assert recon.dtype == np.float64
        assert _maxerr(smooth3d_f64, recon) <= 1e-8

    def test_non_multiple_of_four_shapes(self):
        r = np.random.default_rng(0)
        for shape in [(5,), (9, 7), (6, 5, 7)]:
            data = r.normal(0, 1, shape).astype(np.float32)
            c = ZFPCompressor(error_bound=1e-2)
            recon = c.decompress(c.compress(data))
            assert recon.shape == shape
            assert _maxerr(data, recon) <= 1e-2

    def test_step_function_ratio_vs_bound(self, smooth3d):
        # The minexp flooring makes the coded planes piecewise-constant in
        # the bound: tolerances within the same power-of-two bracket keep
        # identical plane payloads (only the verify-and-patch set differs).
        a = Container.frombytes(ZFPCompressor(error_bound=0.010).compress(smooth3d).payload)
        b = Container.frombytes(ZFPCompressor(error_bound=0.0125).compress(smooth3d).payload)
        assert a.get("payload") == b.get("payload")
        assert a.get("counts") == b.get("counts")

    def test_ratio_grows_across_decades(self, smooth3d):
        r1 = ZFPCompressor(error_bound=1e-4).compress(smooth3d).ratio
        r2 = ZFPCompressor(error_bound=1e-1).compress(smooth3d).ratio
        assert r2 > r1

    def test_patches_present_and_small(self, smooth3d):
        f = ZFPCompressor(error_bound=1e-2).compress(smooth3d)
        ct = Container.frombytes(f.payload)
        n_patch = len(ct.get("patch_val")) // 4
        assert n_patch <= smooth3d.size * 0.02  # <2% of points patched

    def test_constant_field_tiny_payload(self):
        data = np.full((16, 16, 16), 2.5, np.float32)
        f = ZFPCompressor(error_bound=1e-3).compress(data)
        # Each constant block still carries its header and DC planes, so the
        # ceiling is structural (~12-15x at this size), not ~100x like SZ.
        assert f.ratio > 10


class TestFixedRateMode:
    @pytest.mark.parametrize("rate", [2.0, 4.0, 8.0])
    def test_ratio_matches_rate(self, smooth3d, rate):
        c = ZFPFixedRateCompressor(error_bound=rate)
        f = c.compress(smooth3d)
        expected = 32.0 / rate
        assert f.ratio == pytest.approx(expected, rel=0.05)

    def test_rate_mode_not_error_bounded(self, smooth3d):
        # At 1 bit/value the reconstruction error is large - that is the point.
        c = ZFPFixedRateCompressor(error_bound=1.0)
        recon = c.decompress(c.compress(smooth3d))
        err = _maxerr(smooth3d, recon)
        assert err > 1e-3

    def test_quality_improves_with_rate(self, smooth3d):
        errs = []
        for rate in (1.0, 4.0, 16.0):
            c = ZFPFixedRateCompressor(error_bound=rate)
            errs.append(_maxerr(smooth3d, c.decompress(c.compress(smooth3d))))
        assert errs[0] > errs[1] > errs[2]

    def test_accuracy_mode_beats_rate_mode_at_same_ratio(self, smooth3d):
        """The paper's central comparison (Fig. 1): at matched compression
        ratio, accuracy mode has lower error than fixed-rate mode."""
        rate_c = ZFPFixedRateCompressor(error_bound=4.0)
        f_rate = rate_c.compress(smooth3d)
        err_rate = _maxerr(smooth3d, rate_c.decompress(f_rate))

        # Find an accuracy-mode bound with ratio >= the rate mode's.
        best = None
        for eb in np.geomspace(1e-6, 1.0, 40):
            acc_c = ZFPCompressor(error_bound=float(eb))
            f = acc_c.compress(smooth3d)
            if f.ratio >= f_rate.ratio and best is None:
                best = _maxerr(smooth3d, acc_c.decompress(f))
        assert best is not None
        assert best < err_rate

    def test_default_bound_range_is_rate_range(self, smooth3d):
        lo, hi = ZFPFixedRateCompressor().default_bound_range(smooth3d)
        assert lo == 0.5 and hi == 32.0

    def test_describe(self):
        assert ZFPFixedRateCompressor().describe() == "zfp-rate:rate"


class TestValidation:
    def test_rejects_nonpositive(self, smooth2d):
        with pytest.raises(ValueError):
            ZFPCompressor(error_bound=-1.0).compress(smooth2d)

    def test_rejects_int_dtype(self):
        with pytest.raises(TypeError):
            ZFPCompressor().compress(np.arange(16))

    def test_rejects_nan(self):
        data = np.ones((4, 4), np.float32)
        data[0, 0] = np.nan
        with pytest.raises(ValueError):
            ZFPCompressor(error_bound=1e-3).compress(data)

    def test_empty(self):
        c = ZFPCompressor(error_bound=1e-3)
        recon = c.decompress(c.compress(np.zeros((0,), np.float32)))
        assert recon.shape == (0,)

    def test_registry(self):
        assert isinstance(make_compressor("zfp"), ZFPCompressor)
        assert isinstance(make_compressor("zfp-rate"), ZFPFixedRateCompressor)
