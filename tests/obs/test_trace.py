"""Unit tests for :mod:`repro.obs.trace`: spans, sampling, storage.

The service-level behaviour (a job's stitched tree across scheduler,
executor and gateway) lives in ``tests/serve/test_trace_e2e.py`` and
``tests/gateway/test_trace_stitch.py``; this file pins down the
primitives those trees are built from — context propagation, the
head-sampling contract, the bounded store with exemplar pinning, and
the waterfall renderer.
"""

import pytest

from repro.obs.trace import (
    NullSpan,
    Span,
    SpanStore,
    TraceContext,
    Tracer,
    collect_spans,
    current_span,
    install_collector,
    render_waterfall,
    span,
)


class TestTraceContext:
    def test_traceparent_roundtrip(self):
        ctx = TraceContext("ab" * 16, "cd" * 8, sampled=True)
        header = ctx.to_traceparent()
        assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"
        assert TraceContext.from_traceparent(header) == ctx

    def test_unsampled_flag_roundtrip(self):
        ctx = TraceContext("ab" * 16, "cd" * 8, sampled=False)
        parsed = TraceContext.from_traceparent(ctx.to_traceparent())
        assert parsed is not None and parsed.sampled is False

    @pytest.mark.parametrize("header", [
        None, "", "garbage", "00-abc-def-01",
        "00-" + "g" * 32 + "-" + "cd" * 8 + "-01",   # non-hex trace id
        "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",   # all-zero trace id
        "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # all-zero span id
        "00-" + "ab" * 16 + "-" + "cd" * 8,          # missing flags
        "zz-" + "ab" * 16 + "-" + "cd" * 8 + "-01",  # non-hex version
    ])
    def test_malformed_headers_degrade_to_none(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_dict_roundtrip(self):
        ctx = TraceContext("ab" * 16, "cd" * 8, sampled=False)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx
        assert TraceContext.from_dict(None) is None
        assert TraceContext.from_dict({"nope": 1}) is None


class TestSpan:
    def test_lifecycle_and_dict(self):
        sp = Span("work", "ab" * 16, attrs={"k": 1}, node_id="n1")
        sp.set_attr("extra", "v")
        sp.end()
        d = sp.to_dict()
        assert d["name"] == "work"
        assert d["status"] == "ok"
        assert d["duration"] >= 0
        assert d["attrs"] == {"k": 1, "extra": "v"}
        assert d["node_id"] == "n1"

    def test_error_recording(self):
        sp = Span("work", "ab" * 16)
        sp.record_error(ValueError("boom"))
        sp.end()
        d = sp.to_dict()
        assert d["status"] == "error"
        assert "ValueError: boom" in d["error"]

    def test_end_is_idempotent(self):
        sp = Span("work", "ab" * 16)
        sp.end()
        first = sp.duration
        sp.end()
        assert sp.duration == first

    def test_nullspan_is_inert_but_propagates(self):
        ctx = TraceContext("ab" * 16, "cd" * 8, sampled=False)
        null = NullSpan(ctx)
        null.set_attr("k", 1)
        null.record_error("x")
        null.end()
        assert null.is_recording is False
        assert null.context is ctx
        assert null.trace_id == ctx.trace_id
        # Without a context it still yields a usable (unsampled) one.
        fresh = NullSpan().context
        assert fresh.sampled is False and len(fresh.trace_id) == 32


class TestSpanStore:
    def test_per_trace_assembly_and_lookup(self):
        store = SpanStore()
        store.add({"trace_id": "t1", "span_id": "a", "name": "x"})
        store.add({"trace_id": "t1", "span_id": "b", "name": "y"})
        store.add({"trace_id": "t2", "span_id": "c", "name": "z"})
        assert [s["span_id"] for s in store.get("t1")] == ["a", "b"]
        assert store.get("missing") is None
        assert len(store) == 2

    def test_span_cap_per_trace(self):
        store = SpanStore(max_spans_per_trace=2)
        for i in range(5):
            store.add({"trace_id": "t", "span_id": str(i)})
        assert len(store.get("t")) == 2
        assert store.stats_dict()["dropped_spans"] == 3

    def test_trace_eviction_is_oldest_first(self):
        store = SpanStore(max_traces=2, exemplars=0)
        for tid in ("t1", "t2", "t3"):
            store.add({"trace_id": tid, "span_id": "s"})
        assert store.get("t1") is None
        assert store.get("t2") is not None and store.get("t3") is not None

    def test_exemplars_pin_slowest_against_eviction(self):
        store = SpanStore(max_traces=2, exemplars=1)
        store.add({"trace_id": "slow", "span_id": "s"})
        store.finish_trace("slow", 9.0, job_id="j1")
        for tid in ("t2", "t3", "t4"):
            store.add({"trace_id": tid, "span_id": "s"})
        # "slow" survived although it is the oldest trace in the store.
        assert store.get("slow") is not None
        exemplars = store.exemplars()
        assert exemplars[0]["job_id"] == "j1"
        assert exemplars[0]["seconds"] == 9.0

    def test_exemplar_contest_keeps_the_slowest_n(self):
        store = SpanStore(exemplars=2)
        for tid, secs in (("a", 1.0), ("b", 5.0), ("c", 3.0), ("d", 0.1)):
            store.add({"trace_id": tid, "span_id": "s"})
            store.finish_trace(tid, secs, job_id=tid)
        kept = [e["trace_id"] for e in store.exemplars()]
        assert kept == ["b", "c"]  # slowest first

    def test_finish_trace_for_unknown_trace_is_a_noop(self):
        store = SpanStore()
        store.finish_trace("ghost", 1.0)
        assert store.exemplars() == []


class TestTracerSampling:
    def test_sample_rate_one_records(self):
        tracer = Tracer(sample_rate=1.0)
        root = tracer.start_trace("job")
        assert root.is_recording
        tracer.finish_span(root)
        assert tracer.store.get(root.trace_id) is not None
        assert tracer.stats_dict()["sampled"] == 1

    def test_sample_rate_zero_yields_nullspan_with_context(self):
        tracer = Tracer(sample_rate=0.0)
        root = tracer.start_trace("job")
        assert isinstance(root, NullSpan)
        ctx = root.context
        assert ctx.sampled is False and len(ctx.trace_id) == 32
        assert len(tracer.store) == 0
        assert tracer.stats_dict() == {
            "started": 1, "sampled": 0, "sample_rate": 0.0,
            "traces": 0, "max_traces": tracer.store.max_traces,
            "dropped_spans": 0, "exemplars": []}

    def test_incoming_context_overrides_local_decision(self):
        # A sampled caller forces recording even at rate 0 — the head
        # decision is made exactly once, at the true root.
        tracer = Tracer(sample_rate=0.0)
        ctx = TraceContext("ab" * 16, "cd" * 8, sampled=True)
        root = tracer.start_trace("job", context=ctx)
        assert root.is_recording
        assert root.trace_id == ctx.trace_id
        assert root.parent_id == ctx.span_id
        # ... and an unsampled caller suppresses recording at rate 1.
        tracer2 = Tracer(sample_rate=1.0)
        unsampled = TraceContext("ef" * 16, "cd" * 8, sampled=False)
        null = tracer2.start_trace("job", context=unsampled)
        assert not null.is_recording
        assert null.context.trace_id == unsampled.trace_id

    def test_null_parent_begets_null_children(self):
        tracer = Tracer(sample_rate=0.0)
        root = tracer.start_trace("job")
        child = tracer.start_span("stage", root)
        assert not child.is_recording
        assert child.context.trace_id == root.context.trace_id

    def test_tracer_span_without_parent_or_ambient_is_a_noop(self):
        # The invariant that keeps sampled=0 honest: a convenience span
        # with no lineage must NOT root a fresh (re-sampled) trace.
        tracer = Tracer(sample_rate=1.0)
        with tracer.span("orphan") as sp:
            assert not sp.is_recording
        assert len(tracer.store) == 0

    def test_record_span_bypasses_sampling(self):
        tracer = Tracer(sample_rate=0.0, node_id="n1")
        tracer.record_span("job", trace_id="t" * 32, start=1.0, duration=2.0,
                           status="error", error="boom",
                           attrs={"forced_sample": True})
        [recorded] = tracer.store.get("t" * 32)
        assert recorded["status"] == "error"
        assert recorded["node_id"] == "n1"
        assert recorded["attrs"] == {"forced_sample": True}

    def test_seeded_sampling_is_deterministic(self):
        decisions = [
            [Tracer(sample_rate=0.5, seed=42).start_trace("j").is_recording
             for _ in range(1)][0]
            for _ in range(3)
        ]
        assert len(set(decisions)) == 1

    def test_bad_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestAmbient:
    def test_span_without_active_tracer_is_inert(self):
        assert current_span() is None
        with span("deep") as sp:
            assert not sp.is_recording
        assert current_span() is None

    def test_activate_threads_ambient_children(self):
        tracer = Tracer()
        root = tracer.start_trace("job")
        with tracer.activate(root):
            assert current_span() is root
            with span("stage") as stage:
                assert stage.is_recording
                assert stage.parent_id == root.span_id
                with span("inner") as inner:
                    assert inner.parent_id == stage.span_id
        tracer.finish_span(root)
        names = {s["name"] for s in tracer.store.get(root.trace_id)}
        assert names == {"job", "stage", "inner"}

    def test_ambient_exception_marks_span_error(self):
        tracer = Tracer()
        root = tracer.start_trace("job")
        with tracer.activate(root), pytest.raises(RuntimeError):
            with span("stage"):
                raise RuntimeError("boom")
        [stage] = [s for s in tracer.store.get(root.trace_id) or []
                   if s["name"] == "stage"]
        assert stage["status"] == "error"


class TestCollector:
    def test_worker_side_collection_reparents_to_caller(self):
        ctx = TraceContext("ab" * 16, "cd" * 8, sampled=True)
        tracer, root, token = install_collector(ctx.to_dict())
        with span("stage") as sp:
            assert sp.is_recording
        spans = collect_spans(tracer, root, token)
        assert {s["name"] for s in spans} == {"worker", "stage"}
        assert all(s["trace_id"] == ctx.trace_id for s in spans)
        worker = next(s for s in spans if s["name"] == "worker")
        assert worker["parent_id"] == ctx.span_id

    def test_unsampled_context_collects_nothing(self):
        ctx = TraceContext("ab" * 16, "cd" * 8, sampled=False)
        tracer, root, token = install_collector(ctx.to_dict())
        with span("stage"):
            pass
        assert collect_spans(tracer, root, token) == []


class TestWaterfall:
    def test_renders_tree_with_self_times(self):
        spans = [
            {"trace_id": "t", "span_id": "a", "parent_id": None, "name": "job",
             "start": 0.0, "duration": 1.0, "status": "ok", "node_id": "n1"},
            {"trace_id": "t", "span_id": "b", "parent_id": "a", "name": "run",
             "start": 0.2, "duration": 0.6, "status": "ok",
             "attrs": {"bound": 0.5}},
        ]
        out = render_waterfall(spans)
        lines = out.splitlines()
        assert "trace t (2 spans" in lines[0]
        assert "job @n1" in lines[1]
        assert "(self   400.0 ms)" in lines[1]  # 1.0 - 0.6 of the child
        assert "  run [bound=0.5]" in lines[2]

    def test_orphans_render_as_roots(self):
        spans = [{"trace_id": "t", "span_id": "x", "parent_id": "gone",
                  "name": "lost", "start": 0.0, "duration": 0.1,
                  "status": "error", "error": "boom"}]
        out = render_waterfall(spans)
        assert "lost" in out and "!boom" in out

    def test_empty_input(self):
        assert render_waterfall([]) == "(no spans)"
