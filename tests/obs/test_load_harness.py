"""Load harness tests: mix handling, the open loop, SLO gating, snapshots."""

import json
from pathlib import Path

import pytest

from repro.obs.load import (
    check_slo,
    load_mix,
    materialize_mix,
    run_load,
    write_bench,
)

REPO = Path(__file__).resolve().parent.parent.parent

_TINY_MIX = {
    "name": "test-mix",
    "requests": [
        {"weight": 2, "kind": "tune", "compressor": "sz", "target_ratio": 6.0,
         "tolerance": 0.25,
         "data": {"shape": [16, 16], "seed": 3, "generator": "smooth",
                  "variants": 2}},
        {"weight": 1, "kind": "compress", "compressor": "sz",
         "error_bound": 0.001, "output": True,
         "data": {"shape": [16, 16], "seed": 9, "generator": "noise"}},
    ],
}


class TestMix:
    def test_repo_mix_file_is_valid(self):
        mix = load_mix(REPO / "benchmarks" / "load_mix.json")
        assert mix["requests"]

    def test_rejects_missing_requests(self, tmp_path):
        bad = tmp_path / "mix.json"
        bad.write_text(json.dumps({"requests": []}))
        with pytest.raises(ValueError):
            load_mix(bad)
        bad.write_text(json.dumps({"requests": [{"kind": "tune"}]}))
        with pytest.raises(ValueError):
            load_mix(bad)

    def test_materialize_expands_variants(self, tmp_path):
        bodies, weights = materialize_mix(_TINY_MIX, tmp_path)
        assert len(bodies) == 3  # 2 variants + 1
        assert weights == [2, 2, 1]
        assert all("data_b64" in b and "data" not in b for b in bodies)
        # Variants must be distinct arrays, or everything coalesces.
        assert bodies[0]["data_b64"] != bodies[1]["data_b64"]
        assert bodies[2]["output"].endswith(".frz")

    def test_materialize_is_deterministic(self, tmp_path):
        a, _ = materialize_mix(_TINY_MIX, tmp_path)
        b, _ = materialize_mix(_TINY_MIX, tmp_path)
        assert [x["data_b64"] for x in a] == [y["data_b64"] for y in b]


class TestOpenLoop:
    def test_run_against_embedded_server(self, tmp_path):
        from repro.serve import ServiceServer

        bodies, weights = materialize_mix(_TINY_MIX, tmp_path)
        with ServiceServer(port=0, workers=2, executor="thread") as server:
            summary = run_load(server.url, bodies, weights,
                               rps=8, duration=1.0, timeout=60, seed=1)
        out = summary["outcomes"]
        assert out["submitted"] == 8
        assert out["completed"] == 8
        assert out["failed"] == out["errors"] == out["dropped"] == 0
        lat = summary["latency_seconds"]
        assert lat["count"] == 8
        assert 0 < lat["p50"] <= lat["p99"] <= lat["max"]
        assert summary["throughput"]["jobs_per_second"] > 0
        # The post-run service view rode along.
        assert summary["service"]["jobs"]["completed"] == 8
        assert "queue_wait" in summary["service"]["stages"]

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            run_load("http://127.0.0.1:1", [{}], rps=0, duration=1)
        with pytest.raises(ValueError):
            run_load("http://127.0.0.1:1", [{}], rps=1, duration=0)


def _summary(p50=0.1, p99=0.5, jps=10.0, failed=0, submitted=10):
    return {
        "latency_seconds": {"count": submitted, "p50": p50, "p90": p99,
                            "p99": p99, "max": p99, "min": p50, "mean": p50},
        "throughput": {"jobs_per_second": jps, "wall_seconds": 1.0},
        "outcomes": {"submitted": submitted, "completed": submitted - failed,
                     "failed": failed, "rejected": 0, "dropped": 0,
                     "errors": 0, "coalesced": 0},
    }


class TestSLO:
    def test_passing_run_has_no_violations(self):
        thresholds = {"p50_seconds": 1.0, "p99_seconds": 2.0,
                      "min_jobs_per_second": 5.0, "max_error_rate": 0.0}
        assert check_slo(_summary(), thresholds) == []

    def test_each_threshold_can_fire(self):
        assert check_slo(_summary(p50=2.0), {"p50_seconds": 1.0})
        assert check_slo(_summary(p99=9.0), {"p99_seconds": 2.0})
        assert check_slo(_summary(jps=1.0), {"min_jobs_per_second": 5.0})
        assert check_slo(_summary(failed=5), {"max_error_rate": 0.1})

    def test_relax_loosens_both_directions(self):
        assert check_slo(_summary(p50=1.5), {"p50_seconds": 1.0}, relax=2.0) == []
        assert check_slo(_summary(jps=3.0),
                         {"min_jobs_per_second": 5.0}, relax=2.0) == []
        with pytest.raises(ValueError):
            check_slo(_summary(), {}, relax=0)

    def test_no_samples_is_a_violation(self):
        empty = _summary()
        empty["latency_seconds"] = {"count": 0}
        violations = check_slo(empty, {"p99_seconds": 1.0})
        assert violations and "no completed" in violations[0]

    def test_repo_slo_file_shape(self):
        slo = json.loads((REPO / "benchmarks" / "slo.json").read_text())
        for name, profile in slo.items():
            assert profile["rps"] > 0, name
            assert profile["duration_seconds"] > 0, name
            assert isinstance(profile["thresholds"], dict), name


class TestBenchSnapshot:
    def test_written_snapshot_is_stable_and_diffable(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        write_bench(path, _summary())
        text = path.read_text()
        assert text.endswith("\n")
        # Re-serialising parses back to the same object and the same text
        # (sorted keys): byte-stable given equal numbers.
        assert json.loads(text) == _summary()
        write_bench(path, json.loads(text))
        assert path.read_text() == text
        # No wall-clock timestamps in the snapshot.
        assert "time.time" not in text
        assert not any(k.endswith("_at") for k in json.loads(text))
