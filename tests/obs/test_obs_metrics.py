"""Unit tests for the metrics primitives (counters, gauges, histograms)."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_callback_counter_is_read_only(self):
        c = Counter(callback=lambda: 42)
        assert c.value() == 42
        with pytest.raises(RuntimeError):
            c.inc()

    def test_callback_preserves_int(self):
        assert isinstance(Counter(callback=lambda: 7).value(), int)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10.0)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12.0

    def test_callback_gauge_is_read_only(self):
        g = Gauge(callback=lambda: 1.5)
        assert g.value() == 1.5
        with pytest.raises(RuntimeError):
            g.set(0)
        with pytest.raises(RuntimeError):
            g.inc()


class TestHistogram:
    def test_bucket_assignment_le_semantics(self):
        h = Histogram(buckets=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 2.0, 99.0):
            h.observe(v)
        # le semantics: 1.0 lands in the first bucket, 2.0 in the second.
        assert h.bucket_counts() == [2, 2, 1]
        assert h.cumulative_counts() == [2, 4, 5]
        assert h.count == 5
        assert h.sum == pytest.approx(104.0)
        assert h.min == 0.5
        assert h.max == 99.0

    def test_empty_histogram(self):
        h = Histogram()
        assert h.count == 0
        assert h.min is None and h.max is None
        assert h.quantile(0.5) is None
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["p50"] is None

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, float("inf")))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Histogram().observe(float("nan"))

    def test_quantiles_clamped_to_observed_range(self):
        h = Histogram(buckets=(10.0,))
        h.observe(2.0)
        h.observe(3.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            est = h.quantile(q)
            assert 2.0 <= est <= 3.0

    def test_quantile_domain_checked(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_single_observation_quantiles_exact(self):
        h = Histogram()
        h.observe(0.042)
        assert h.quantile(0.5) == pytest.approx(0.042)
        assert h.quantile(0.99) == pytest.approx(0.042)

    def test_merge_requires_matching_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0,)).merge(Histogram(buckets=(2.0,)))

    def test_merge_accumulates(self):
        a, b = Histogram(), Histogram()
        a.observe(0.01)
        b.observe(1.5)
        b.observe(0.0001)
        a.merge(b)
        assert a.count == 3
        assert a.min == 0.0001
        assert a.max == 1.5
        assert a.sum == pytest.approx(1.5101)

    def test_snapshot_shape(self):
        h = Histogram()
        h.observe(0.02)
        snap = h.snapshot()
        assert set(snap) == {"count", "sum", "min", "max", "p50", "p90", "p99"}

    def test_concurrent_observes(self):
        h = Histogram()
        n, threads = 200, []

        def worker():
            for _ in range(n):
                h.observe(0.01)

        for _ in range(8):
            t = threading.Thread(target=worker)
            t.start()
            threads.append(t)
        for t in threads:
            t.join()
        assert h.count == 8 * n
        assert sum(h.bucket_counts()) == 8 * n


class TestRegistry:
    def test_namespace_prefixes_names(self):
        reg = MetricsRegistry()
        fam = reg.counter("jobs_total")
        assert fam.name == "repro_jobs_total"
        assert reg.get("jobs_total") is fam
        assert reg.get("repro_jobs_total") is fam

    def test_registration_idempotent_same_kind(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_label_signature_collision_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", labels=("stage",))
        with pytest.raises(ValueError):
            reg.histogram("h", labels=("kind",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "1abc", "has space", "dash-ed"):
            with pytest.raises(ValueError):
                reg.counter(bad)

    def test_labelled_family_children(self):
        reg = MetricsRegistry()
        fam = reg.histogram("stage_seconds", labels=("stage",))
        fam.labels(stage="train").observe(0.5)
        fam.labels(stage="train").observe(0.7)
        fam.labels(stage="encode").observe(0.1)
        assert fam.labels(stage="train").count == 2
        with pytest.raises(ValueError):
            fam.labels(wrong="x")
        with pytest.raises(ValueError):
            fam.observe(1.0)  # labelled family has no solo child

    def test_unlabelled_family_is_its_child(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(2)
        reg.histogram("h").observe(0.2)
        assert reg.get("c").value() == 3
        assert reg.get("g").value() == 2
        assert reg.get("h").quantile(0.5) == pytest.approx(0.2)

    def test_callback_metrics_cannot_be_labelled(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c", labels=("a",), callback=lambda: 1)

    def test_snapshot_keys_and_values(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", callback=lambda: 5)
        fam = reg.histogram("stage_seconds", labels=("stage",))
        fam.labels(stage="train").observe(0.5)
        snap = reg.snapshot()
        assert snap["repro_jobs_total"] == 5
        key = 'repro_stage_seconds{stage="train"}'
        assert snap[key]["count"] == 1
        assert snap[key]["p50"] == pytest.approx(0.5)

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(set(DEFAULT_LATENCY_BUCKETS))
