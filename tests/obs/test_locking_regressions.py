"""Concurrency regressions surfaced by the lock-discipline checker.

Two fixes locked in here: ``MetricFamily`` child lookups now happen
under the family lock (concurrent ``labels()`` creation can rehash the
dict mid-read), and ``TraceLogger`` resolves its output stream under its
lock so reconfiguration never tears a record across two streams.
"""

from __future__ import annotations

import io
import json
import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracelog import TraceLogger


def test_family_solo_reads_race_label_creation():
    reg = MetricsRegistry()
    solo = reg.counter("solo_total", "unlabelled family")
    labelled = reg.counter("labelled_total", "labelled family",
                           labels=("shard",))
    errors: list[BaseException] = []

    def reader() -> None:
        try:
            for _ in range(2000):
                solo.inc()
                assert solo.value() >= 0
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def creator() -> None:
        try:
            for i in range(2000):
                labelled.labels(shard=str(i % 50)).inc()
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=f)
               for f in (reader, creator, reader, creator)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert solo.value() == 2 * 2000
    assert sum(c.value() for _, c in labelled.children()) == 2 * 2000


def test_tracelogger_stream_swap_never_tears_a_record():
    streams = [io.StringIO(), io.StringIO()]
    log = TraceLogger("node", json_lines=True, stream=streams[0])
    stop = threading.Event()

    def swapper() -> None:
        i = 0
        while not stop.is_set():
            i += 1
            log._stream = streams[i % 2]

    flipper = threading.Thread(target=swapper)
    flipper.start()
    try:
        writers = [threading.Thread(
            target=lambda w=w: [log.event("tick", seq=f"{w}-{n}")
                                for n in range(200)])
            for w in range(4)]
        for t in writers:
            t.start()
        for t in writers:
            t.join()
    finally:
        stop.set()
        flipper.join()

    lines = [ln for s in streams for ln in s.getvalue().splitlines() if ln]
    assert len(lines) == 4 * 200  # every record landed, wholly, somewhere
    for line in lines:
        record = json.loads(line)  # no interleaved/torn JSON
        assert record["event"] == "tick"
