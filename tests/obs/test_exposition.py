"""Render/parse tests for the Prometheus text exposition."""

import math

import pytest

from repro.obs.exposition import CONTENT_TYPE, parse_prometheus, render_prometheus
from repro.obs.metrics import MetricsRegistry


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("jobs_total", "Total jobs").inc(3)
    reg.gauge("queue_depth", "Depth").set(2)
    fam = reg.histogram("latency_seconds", "Latency", labels=("stage",),
                        buckets=(0.1, 1.0))
    fam.labels(stage="run").observe(0.05)
    fam.labels(stage="run").observe(0.5)
    fam.labels(stage="run").observe(5.0)
    return reg


class TestRender:
    def test_help_and_type_lines(self):
        text = render_prometheus(_registry())
        assert "# HELP repro_jobs_total Total jobs" in text
        assert "# TYPE repro_jobs_total counter" in text
        assert "# TYPE repro_latency_seconds histogram" in text

    def test_counter_and_gauge_samples(self):
        text = render_prometheus(_registry())
        assert "repro_jobs_total 3" in text
        assert "repro_queue_depth 2" in text

    def test_histogram_expansion(self):
        text = render_prometheus(_registry())
        assert 'repro_latency_seconds_bucket{stage="run",le="0.1"} 1' in text
        assert 'repro_latency_seconds_bucket{stage="run",le="1"} 2' in text
        assert 'repro_latency_seconds_bucket{stage="run",le="+Inf"} 3' in text
        assert 'repro_latency_seconds_count{stage="run"} 3' in text
        assert 'repro_latency_seconds_sum{stage="run"} 5.55' in text

    def test_ends_with_newline(self):
        assert render_prometheus(_registry()).endswith("\n")

    def test_content_type_declares_version(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestRoundTrip:
    def test_parse_recovers_samples(self):
        samples = parse_prometheus(render_prometheus(_registry()))
        assert samples["repro_jobs_total"][0].value == 3
        assert samples["repro_queue_depth"][0].value == 2
        buckets = samples["repro_latency_seconds_bucket"]
        by_le = {s.labels["le"]: s.value for s in buckets}
        assert by_le["0.1"] == 1
        assert by_le["1"] == 2
        assert by_le["+Inf"] == 3
        assert math.isinf(float("inf"))

    def test_types_pseudo_key(self):
        samples = parse_prometheus(render_prometheus(_registry()))
        declared = {s.name: s.labels["type"] for s in samples["__types__"]}
        assert declared["repro_jobs_total"] == "counter"
        assert declared["repro_queue_depth"] == "gauge"
        assert declared["repro_latency_seconds"] == "histogram"

    def test_cumulative_buckets_are_monotone(self):
        samples = parse_prometheus(render_prometheus(_registry()))
        values = [s.value for s in samples["repro_latency_seconds_bucket"]]
        assert values == sorted(values)

    def test_inf_bucket_equals_count(self):
        samples = parse_prometheus(render_prometheus(_registry()))
        inf = [s for s in samples["repro_latency_seconds_bucket"]
               if s.labels["le"] == "+Inf"][0]
        count = samples["repro_latency_seconds_count"][0]
        assert inf.value == count.value


class TestLabelEscaping:
    """Round-trip of the full label-value escaping rules.

    Gauge label values come from user-controlled strings (node ids,
    versions, file paths), so the renderer must escape ``\\``, ``\"``
    and newlines — and the strict parser must undo exactly that,
    including commas and braces *inside* quoted values, which break any
    naive split-on-comma scanner.
    """

    @pytest.mark.parametrize("value", [
        'quote " inside',
        "back\\slash",
        "new\nline",
        "comma, inside",
        "brace } inside {",
        'all of it: \\ " \n , }',
    ])
    def test_roundtrip(self, value):
        reg = MetricsRegistry()
        reg.gauge("info", "Info", labels=("path",)).labels(path=value).set(1)
        samples = parse_prometheus(render_prometheus(reg))
        assert samples["repro_info"][0].labels == {"path": value}

    def test_escaped_text_on_the_wire(self):
        reg = MetricsRegistry()
        reg.gauge("info", "Info", labels=("p",)).labels(p='a"b\\c\nd').set(1)
        text = render_prometheus(reg)
        assert r'p="a\"b\\c\nd"' in text

    def test_multiple_labels_with_tricky_values(self):
        reg = MetricsRegistry()
        fam = reg.gauge("info", "Info", labels=("a", "b"))
        fam.labels(a="x,y", b='z"w').set(2)
        [sample] = parse_prometheus(render_prometheus(reg))["repro_info"]
        assert sample.labels == {"a": "x,y", "b": 'z"w'}
        assert sample.value == 2

    def test_bad_escape_sequence_rejected(self):
        with pytest.raises(ValueError, match="bad escape"):
            parse_prometheus('name{l="bad \\t escape"} 1\n')

    def test_unterminated_quoted_value_rejected(self):
        with pytest.raises(ValueError, match="unterminated"):
            parse_prometheus('name{l="never closed} 1\n')


class TestNonFiniteValues:
    """NaN and ±Inf sample values render and parse per the spec."""

    def test_nan_gauge_renders_and_parses(self):
        reg = MetricsRegistry()
        reg.gauge("ratio", "Ratio").set(float("nan"))
        text = render_prometheus(reg)
        assert "repro_ratio NaN" in text
        value = parse_prometheus(text)["repro_ratio"][0].value
        assert math.isnan(value)

    @pytest.mark.parametrize("raw, expected", [
        (float("inf"), "+Inf"),
        (float("-inf"), "-Inf"),
    ])
    def test_infinities_render(self, raw, expected):
        reg = MetricsRegistry()
        reg.gauge("edge", "Edge").set(raw)
        text = render_prometheus(reg)
        assert f"repro_edge {expected}" in text
        value = parse_prometheus(text)["repro_edge"][0].value
        assert math.isinf(value) and (value > 0) == (raw > 0)


class TestDuplicateTypeDeclarations:
    def test_duplicate_type_rejected(self):
        text = ("# TYPE foo counter\n"
                "foo 1\n"
                "# TYPE foo counter\n"
                "foo 2\n")
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_prometheus(text)

    def test_conflicting_kind_rejected_too(self):
        text = "# TYPE foo counter\n# TYPE foo gauge\n"
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_prometheus(text)

    def test_distinct_names_fine(self):
        samples = parse_prometheus(
            "# TYPE foo counter\nfoo 1\n# TYPE bar gauge\nbar 2\n")
        declared = {s.name for s in samples["__types__"]}
        assert declared == {"foo", "bar"}


class TestHistogramMerge:
    def test_mismatched_buckets_raise(self):
        from repro.obs.metrics import Histogram

        left = Histogram(buckets=(0.1, 1.0))
        right = Histogram(buckets=(0.5, 1.0))
        left.observe(0.05)
        right.observe(0.7)
        with pytest.raises(ValueError):
            left.merge(right)

    def test_matching_buckets_merge(self):
        from repro.obs.metrics import Histogram

        left = Histogram(buckets=(0.1, 1.0))
        right = Histogram(buckets=(0.1, 1.0))
        left.observe(0.05)
        right.observe(0.7)
        left.merge(right)
        assert left.count == 2
        assert left.sum == pytest.approx(0.75)


class TestParserRejectsMalformed:
    @pytest.mark.parametrize("line", [
        "no_value_here",
        "name{unterminated 1",
        'name{bad-label="x"} 1',
        "name not_a_number",
        "# BOGUS comment line",
        "# TYPE name untyped_kind",
    ])
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ValueError):
            parse_prometheus(line + "\n")

    def test_blank_lines_ignored(self):
        samples = parse_prometheus("\n\nfoo 1\n\n")
        assert samples["foo"][0].value == 1
