"""Render/parse tests for the Prometheus text exposition."""

import math

import pytest

from repro.obs.exposition import CONTENT_TYPE, parse_prometheus, render_prometheus
from repro.obs.metrics import MetricsRegistry


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("jobs_total", "Total jobs").inc(3)
    reg.gauge("queue_depth", "Depth").set(2)
    fam = reg.histogram("latency_seconds", "Latency", labels=("stage",),
                        buckets=(0.1, 1.0))
    fam.labels(stage="run").observe(0.05)
    fam.labels(stage="run").observe(0.5)
    fam.labels(stage="run").observe(5.0)
    return reg


class TestRender:
    def test_help_and_type_lines(self):
        text = render_prometheus(_registry())
        assert "# HELP repro_jobs_total Total jobs" in text
        assert "# TYPE repro_jobs_total counter" in text
        assert "# TYPE repro_latency_seconds histogram" in text

    def test_counter_and_gauge_samples(self):
        text = render_prometheus(_registry())
        assert "repro_jobs_total 3" in text
        assert "repro_queue_depth 2" in text

    def test_histogram_expansion(self):
        text = render_prometheus(_registry())
        assert 'repro_latency_seconds_bucket{stage="run",le="0.1"} 1' in text
        assert 'repro_latency_seconds_bucket{stage="run",le="1"} 2' in text
        assert 'repro_latency_seconds_bucket{stage="run",le="+Inf"} 3' in text
        assert 'repro_latency_seconds_count{stage="run"} 3' in text
        assert 'repro_latency_seconds_sum{stage="run"} 5.55' in text

    def test_ends_with_newline(self):
        assert render_prometheus(_registry()).endswith("\n")

    def test_content_type_declares_version(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestRoundTrip:
    def test_parse_recovers_samples(self):
        samples = parse_prometheus(render_prometheus(_registry()))
        assert samples["repro_jobs_total"][0].value == 3
        assert samples["repro_queue_depth"][0].value == 2
        buckets = samples["repro_latency_seconds_bucket"]
        by_le = {s.labels["le"]: s.value for s in buckets}
        assert by_le["0.1"] == 1
        assert by_le["1"] == 2
        assert by_le["+Inf"] == 3
        assert math.isinf(float("inf"))

    def test_types_pseudo_key(self):
        samples = parse_prometheus(render_prometheus(_registry()))
        declared = {s.name: s.labels["type"] for s in samples["__types__"]}
        assert declared["repro_jobs_total"] == "counter"
        assert declared["repro_queue_depth"] == "gauge"
        assert declared["repro_latency_seconds"] == "histogram"

    def test_cumulative_buckets_are_monotone(self):
        samples = parse_prometheus(render_prometheus(_registry()))
        values = [s.value for s in samples["repro_latency_seconds_bucket"]]
        assert values == sorted(values)

    def test_inf_bucket_equals_count(self):
        samples = parse_prometheus(render_prometheus(_registry()))
        inf = [s for s in samples["repro_latency_seconds_bucket"]
               if s.labels["le"] == "+Inf"][0]
        count = samples["repro_latency_seconds_count"][0]
        assert inf.value == count.value


class TestParserRejectsMalformed:
    @pytest.mark.parametrize("line", [
        "no_value_here",
        "name{unterminated 1",
        'name{bad-label="x"} 1',
        "name not_a_number",
        "# BOGUS comment line",
        "# TYPE name untyped_kind",
    ])
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ValueError):
            parse_prometheus(line + "\n")

    def test_blank_lines_ignored(self):
        samples = parse_prometheus("\n\nfoo 1\n\n")
        assert samples["foo"][0].value == 1
