"""Tests for :class:`repro.obs.tracelog.TraceLogger`.

The JSON envelope is a correlation contract — ``trace_id``/``job_id``
on a log line must match what ``/trace`` serves — so these tests pin
the exact key set and ordering-insensitive content of both formats.
"""

import io
import json

from repro.obs.tracelog import TraceLogger


def _lines(stream: io.StringIO) -> list[str]:
    return [ln for ln in stream.getvalue().splitlines() if ln]


class TestJsonLines:
    def test_envelope_keys_and_correlation_ids(self):
        stream = io.StringIO()
        log = TraceLogger("node", node_id="n0", json_lines=True,
                          stream=stream)
        log.event("job_finished", trace_id="ab" * 16, job_id="j000007",
                  elapsed=1.25)
        [line] = _lines(stream)
        record = json.loads(line)
        assert record["level"] == "info"
        assert record["event"] == "job_finished"
        assert record["service"] == "node"
        assert record["node_id"] == "n0"
        assert record["trace_id"] == "ab" * 16
        assert record["job_id"] == "j000007"
        assert record["elapsed"] == 1.25
        assert isinstance(record["ts"], float)

    def test_optional_ids_omitted_not_nulled(self):
        stream = io.StringIO()
        TraceLogger("gateway", json_lines=True, stream=stream).event("boot")
        record = json.loads(_lines(stream)[0])
        assert "node_id" not in record
        assert "trace_id" not in record
        assert "job_id" not in record

    def test_error_shorthand_sets_level(self):
        stream = io.StringIO()
        log = TraceLogger("node", json_lines=True, stream=stream)
        log.error("job_failed", job_id="j1", error="boom")
        record = json.loads(_lines(stream)[0])
        assert record["level"] == "error"
        assert record["error"] == "boom"

    def test_non_serialisable_fields_degrade_to_str(self):
        stream = io.StringIO()
        log = TraceLogger("node", json_lines=True, stream=stream)
        log.event("weird", obj={1, 2})  # a set is not JSON-serialisable
        record = json.loads(_lines(stream)[0])  # must not raise
        assert "1" in record["obj"] and "2" in record["obj"]

    def test_one_record_per_line(self):
        stream = io.StringIO()
        log = TraceLogger("node", json_lines=True, stream=stream)
        for i in range(3):
            log.event("tick", i=i)
        records = [json.loads(ln) for ln in _lines(stream)]
        assert [r["i"] for r in records] == [0, 1, 2]


class TestHumanFormat:
    def test_line_shape(self):
        stream = io.StringIO()
        log = TraceLogger("node", node_id="n2", stream=stream)
        log.event("job_routed", job_id="j1", trace_id="t" * 32, node="n2")
        [line] = _lines(stream)
        assert line.startswith("[node:n2] job_routed")
        assert "job=j1" in line
        assert f"trace={'t' * 32}" in line
        assert "node=n2" in line

    def test_service_tag_without_node_id(self):
        stream = io.StringIO()
        TraceLogger("gateway", stream=stream).event("boot", port=8077)
        assert _lines(stream)[0] == "[gateway] boot port=8077"


class TestDisabled:
    def test_disabled_logger_emits_nothing(self):
        stream = io.StringIO()
        log = TraceLogger("node", enabled=False, json_lines=True,
                          stream=stream)
        log.event("job_finished", job_id="j1")
        log.error("job_failed", job_id="j1")
        assert stream.getvalue() == ""
