"""Boundary-value regression for the quantizer's code radius.

The encoder marks codes with ``|q| >= radius`` unpredictable and uses
``radius`` itself as the literal sentinel symbol.  The clamp applied to
out-of-range codes therefore must never leave a value at ``±radius`` in
the ``codes`` array: a code equal to exactly ``radius`` would alias the
sentinel (mis-decoded as a literal slot), and one at ``-radius`` would
dequantize as a valid code on any path that forgot the ``ok`` mask.
"""

import numpy as np
import pytest

from repro.sz.compressor import SZCompressor
from repro.sz.interpolation import SZInterpolationCompressor
from repro.sz.quantizer import dequantize, quantize

EB = 0.5
RADIUS = 4
TWO_EB = 2.0 * EB


def _quantize(values):
    values = np.asarray(values, dtype=np.float64)
    pred = np.zeros_like(values)
    return quantize(values, pred, EB, RADIUS, np.dtype(np.float64))


class TestCodeBoundary:
    def test_code_exactly_radius_is_unpredictable(self):
        # residual / (2*eb) == radius exactly: outside the exclusive range.
        res = _quantize([TWO_EB * RADIUS])
        assert not res.ok[0]

    def test_code_radius_minus_one_is_ok(self):
        res = _quantize([TWO_EB * (RADIUS - 1)])
        assert res.ok[0]
        assert res.codes[0] == RADIUS - 1
        assert abs(res.recon[0] - TWO_EB * (RADIUS - 1)) <= EB

    def test_clipped_codes_never_alias_the_sentinel(self):
        # Outliers of every size — including the exact boundary — must be
        # clamped strictly inside (-radius, radius), never *onto* it.
        values = [
            TWO_EB * RADIUS,          # exactly +radius
            -TWO_EB * RADIUS,         # exactly -radius
            TWO_EB * (RADIUS + 10),   # beyond
            -1e300,                   # astronomically beyond
            np.nan,
            np.inf,
        ]
        res = _quantize(values)
        assert not res.ok.any()
        assert np.abs(res.codes).max() <= RADIUS - 1

    def test_boundary_negative_code_round_trips_via_literal(self):
        # -radius is just as unpredictable as +radius even though only
        # +radius doubles as the sentinel.
        res = _quantize([-TWO_EB * RADIUS])
        assert not res.ok[0]

    def test_dequantize_inverts_ok_codes(self):
        values = TWO_EB * np.arange(-(RADIUS - 1), RADIUS, dtype=np.float64)
        res = _quantize(values)
        assert res.ok.all()
        recon = dequantize(res.codes, np.zeros_like(values), EB, np.dtype(np.float64))
        np.testing.assert_allclose(recon, values, atol=EB)


@pytest.mark.parametrize("cls", [SZCompressor, SZInterpolationCompressor])
class TestTinyRadiusRoundTrip:
    """End-to-end with a tiny radius: boundary codes occur en masse and
    every one must come back as an exact literal, bound intact."""

    def _field(self):
        r = np.random.default_rng(7)
        smooth = np.linspace(0, 1, 24 * 24).reshape(24, 24)
        spikes = np.zeros_like(smooth)
        # Residuals at exactly ±(2*eb*radius) and far beyond — the alias
        # hazard is the exact-boundary case.
        spikes.ravel()[::7] = 2.0 * 1e-3 * 4
        spikes.ravel()[3::11] = -2.0 * 1e-3 * 4
        spikes.ravel()[5::13] = 50.0
        return (smooth + spikes + 1e-4 * r.standard_normal(smooth.shape)).astype(
            np.float64
        )

    def test_bound_holds_with_boundary_outliers(self, cls):
        data = self._field()
        comp = cls(error_bound=1e-3, radius=4)
        recon = comp.decompress(comp.compress(data))
        assert np.abs(recon - data).max() <= 1e-3

    def test_round_trip_deterministic(self, cls):
        data = self._field()
        comp = cls(error_bound=1e-3, radius=4)
        a = comp.compress(data).payload
        b = comp.compress(data).payload
        assert a == b
