"""Unit tests for block decomposition and the regression predictor."""

import numpy as np
import pytest

from repro.sz.blocks import BlockGrid
from repro.sz.regression import fit_full_blocks, predict_full_blocks


class TestBlockGrid:
    def test_counts_ceil_division(self):
        grid = BlockGrid((13, 12), 6)
        assert grid.counts == (3, 2)
        assert grid.full_counts == (2, 2)

    def test_n_blocks(self):
        grid = BlockGrid((12, 12, 12), 6)
        assert grid.n_blocks == 8 and grid.n_full_blocks == 8

    def test_full_block_view_roundtrip(self):
        grid = BlockGrid((12, 18), 6)
        data = np.arange(12 * 18, dtype=np.float64).reshape(12, 18)
        view = grid.full_block_view(data)
        assert view.shape == (grid.n_full_blocks, 36)
        out = np.zeros_like(data)
        grid.scatter_full_blocks(view, out)
        assert (out == data).all()

    def test_full_block_view_first_block_contents(self):
        grid = BlockGrid((6, 6), 3)
        data = np.arange(36).reshape(6, 6).astype(np.float64)
        view = grid.full_block_view(data)
        assert view[0].tolist() == data[:3, :3].ravel().tolist()

    def test_partial_region_excluded(self):
        grid = BlockGrid((7, 7), 6)
        assert grid.full_counts == (1, 1)
        data = np.ones((7, 7))
        assert grid.full_block_view(data).shape == (1, 36)

    def test_wrong_shape_raises(self):
        grid = BlockGrid((6, 6), 6)
        with pytest.raises(ValueError):
            grid.full_block_view(np.ones((5, 5)))

    def test_full_block_mask(self):
        grid = BlockGrid((6, 12), 6)
        mask = grid.full_block_mask(np.array([True, False]))
        assert mask[:6, :6].all()
        assert not mask[:, 6:].any()

    def test_block_coords_shape(self):
        grid = BlockGrid((12, 12, 12), 6)
        coords = grid.block_coords()
        assert coords.shape == (3, 216)


class TestRegression:
    def test_exact_on_affine_blocks(self):
        grid = BlockGrid((12, 12), 6)
        i, j = np.meshgrid(np.arange(12.0), np.arange(12.0), indexing="ij")
        data = 3.0 + 0.5 * i - 0.25 * j
        view = grid.full_block_view(data)
        coeffs = fit_full_blocks(grid, view)
        pred = predict_full_blocks(grid, coeffs)
        assert np.allclose(pred, view, atol=1e-5)

    def test_coefficient_values_recover_plane(self):
        grid = BlockGrid((6, 6), 6)
        i, j = np.meshgrid(np.arange(6.0), np.arange(6.0), indexing="ij")
        data = 1.0 + 2.0 * i + 3.0 * j
        coeffs = fit_full_blocks(grid, grid.full_block_view(data))
        beta0, beta_i, beta_j = coeffs[0]
        assert beta_i == pytest.approx(2.0, abs=1e-4)
        assert beta_j == pytest.approx(3.0, abs=1e-4)
        assert beta0 == pytest.approx(1.0, abs=1e-3)

    def test_least_squares_beats_mean_on_sloped_noise(self):
        rng = np.random.default_rng(0)
        grid = BlockGrid((6, 6), 6)
        i, j = np.meshgrid(np.arange(6.0), np.arange(6.0), indexing="ij")
        data = 5.0 * i + rng.normal(0, 0.1, (6, 6))
        view = grid.full_block_view(data)
        pred = predict_full_blocks(grid, fit_full_blocks(grid, view))
        mean_err = np.abs(view - view.mean()).sum()
        reg_err = np.abs(view - pred).sum()
        assert reg_err < mean_err / 5

    def test_3d_blocks(self):
        grid = BlockGrid((6, 6, 6), 6)
        i, j, k = np.meshgrid(*(np.arange(6.0),) * 3, indexing="ij")
        data = i - j + 2 * k
        view = grid.full_block_view(data)
        pred = predict_full_blocks(grid, fit_full_blocks(grid, view))
        assert np.allclose(pred, view, atol=1e-4)

    def test_float32_coefficient_storage(self):
        grid = BlockGrid((6, 6), 6)
        coeffs = fit_full_blocks(grid, grid.full_block_view(np.ones((6, 6))))
        assert coeffs.dtype == np.float32
