"""Unit and behavioural tests for the SZ pipeline."""

import numpy as np
import pytest

from repro.pressio import make_compressor
from repro.sz.compressor import SZCompressor
from repro.sz.quantizer import dequantize, quantize


def _maxerr(a, b):
    return float(np.abs(a.astype(np.float64) - b.astype(np.float64)).max())


class TestQuantizer:
    def test_codes_reconstruct_within_bound(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0, 10, 1000)
        pred = values + rng.normal(0, 0.5, 1000)
        q = quantize(values, pred, 0.01, 32768, np.dtype(np.float64))
        recon = dequantize(q.codes[q.ok], pred[q.ok], 0.01, np.dtype(np.float64))
        assert np.abs(recon - values[q.ok]).max() <= 0.01

    def test_out_of_range_marked_not_ok(self):
        values = np.array([1e9])
        pred = np.array([0.0])
        q = quantize(values, pred, 1e-6, 32768, np.dtype(np.float64))
        assert not q.ok[0]

    def test_nan_marked_not_ok(self):
        q = quantize(np.array([np.nan]), np.array([0.0]), 0.1, 32768, np.dtype(np.float64))
        assert not q.ok[0]

    def test_float32_cast_violation_detected(self):
        # A value whose float32 rounding pushes it past a razor-thin bound.
        values = np.array([1.0 + 2.0**-30])
        pred = np.array([1.0])
        q = quantize(values, pred, 2.0**-32, 32768, np.dtype(np.float32))
        # Either ok with the bound held after cast, or flagged not-ok.
        if q.ok[0]:
            assert abs(float(q.recon[0]) - values[0]) <= 2.0**-32


class TestSZRoundtrip:
    @pytest.mark.parametrize("eb", [1e-4, 1e-3, 1e-2, 1e-1])
    def test_error_bound_3d(self, smooth3d, eb):
        c = SZCompressor(error_bound=eb)
        f = c.compress(smooth3d)
        assert _maxerr(smooth3d, c.decompress(f)) <= eb

    def test_error_bound_2d(self, smooth2d):
        c = SZCompressor(error_bound=1e-3)
        assert _maxerr(smooth2d, c.decompress(c.compress(smooth2d))) <= 1e-3

    def test_error_bound_1d(self, smooth1d):
        c = SZCompressor(error_bound=1e-3)
        assert _maxerr(smooth1d, c.decompress(c.compress(smooth1d))) <= 1e-3

    def test_error_bound_sparse(self, sparse3d):
        c = SZCompressor(error_bound=1e-3)
        assert _maxerr(sparse3d, c.decompress(c.compress(sparse3d))) <= 1e-3

    def test_error_bound_rough(self, rough1d):
        c = SZCompressor(error_bound=1e-2)
        assert _maxerr(rough1d, c.decompress(c.compress(rough1d))) <= 1e-2

    def test_float64_input(self, smooth3d_f64):
        c = SZCompressor(error_bound=1e-6)
        recon = c.decompress(c.compress(smooth3d_f64))
        assert recon.dtype == np.float64
        assert _maxerr(smooth3d_f64, recon) <= 1e-6

    def test_shape_and_dtype_preserved(self, smooth2d):
        c = SZCompressor(error_bound=1e-3)
        recon = c.decompress(c.compress(smooth2d))
        assert recon.shape == smooth2d.shape
        assert recon.dtype == smooth2d.dtype

    def test_constant_field(self):
        data = np.full((20, 20), 5.5, np.float32)
        c = SZCompressor(error_bound=1e-3)
        f = c.compress(data)
        assert _maxerr(data, c.decompress(f)) <= 1e-3
        assert f.ratio > 10  # constants compress extremely well (frame overhead
        # dominates at this tiny size; larger constants reach 100x+)

    def test_nan_survives_as_literal(self):
        data = np.ones((8, 8), np.float32)
        data[3, 3] = np.nan
        c = SZCompressor(error_bound=1e-3)
        recon = c.decompress(c.compress(data))
        assert np.isnan(recon[3, 3])
        mask = ~np.isnan(data)
        assert _maxerr(data[mask], recon[mask]) <= 1e-3


class TestSZBehaviour:
    def test_ratio_grows_with_bound_coarsely(self, smooth3d):
        # Monotone on decades even if locally spiky (Fig. 3).
        ratios = [
            SZCompressor(error_bound=eb).compress(smooth3d).ratio
            for eb in (1e-4, 1e-2, 1.0)
        ]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_regression_toggle_changes_payload(self, smooth3d):
        with_reg = SZCompressor(error_bound=1e-2, use_regression=True).compress(smooth3d)
        without = SZCompressor(error_bound=1e-2, use_regression=False).compress(smooth3d)
        assert with_reg.payload != without.payload
        # Pure-Lorenzo payload still decodes within bound.
        c = SZCompressor(error_bound=1e-2, use_regression=False)
        assert _maxerr(smooth3d, c.decompress(without)) <= 1e-2

    def test_lz77_dict_codec_roundtrip(self, smooth2d):
        c = SZCompressor(error_bound=1e-2, dict_codec="lz77")
        assert _maxerr(smooth2d, c.decompress(c.compress(smooth2d))) <= 1e-2

    def test_with_error_bound_returns_new_instance(self):
        c = SZCompressor(error_bound=1e-3)
        c2 = c.with_error_bound(1e-2)
        assert c.error_bound == 1e-3 and c2.error_bound == 1e-2
        assert isinstance(c2, SZCompressor)

    def test_describe(self):
        assert SZCompressor().describe() == "sz:abs"

    def test_registry_construction(self):
        c = make_compressor("sz", error_bound=0.5)
        assert isinstance(c, SZCompressor) and c.error_bound == 0.5


class TestSZValidation:
    def test_rejects_nonpositive_bound(self, smooth2d):
        with pytest.raises(ValueError):
            SZCompressor(error_bound=0.0).compress(smooth2d)

    def test_rejects_integer_dtype(self):
        with pytest.raises(TypeError):
            SZCompressor().compress(np.arange(10))

    def test_rejects_4d(self):
        with pytest.raises(ValueError):
            SZCompressor().compress(np.zeros((2, 2, 2, 2), np.float32))

    def test_empty_array(self):
        data = np.zeros((0,), np.float32)
        c = SZCompressor(error_bound=1e-3)
        recon = c.decompress(c.compress(data))
        assert recon.shape == (0,)

    def test_decompress_accepts_raw_bytes(self, smooth2d):
        c = SZCompressor(error_bound=1e-2)
        f = c.compress(smooth2d)
        recon = c.decompress(f.payload)
        assert _maxerr(smooth2d, recon) <= 1e-2
