"""Tests for the point-wise relative bound mode."""

import numpy as np
import pytest

from repro.pressio import make_compressor
from repro.sz.pwrel import SZPointwiseRelative


def _check_pwrel(data: np.ndarray, rel: float, zero_threshold: float) -> np.ndarray:
    comp = SZPointwiseRelative(error_bound=rel, zero_threshold=zero_threshold)
    recon = comp.decompress(comp.compress(data))
    d = data.astype(np.float64).ravel()
    r = recon.astype(np.float64).ravel()
    big = np.abs(d) > zero_threshold
    if big.any():
        rel_err = np.abs(r[big] - d[big]) / np.abs(d[big])
        assert rel_err.max() <= rel, f"pw-rel bound violated: {rel_err.max()}"
    assert (r[~big] == 0.0).all()
    return recon


class TestPointwiseRelBound:
    @pytest.mark.parametrize("rel", [1e-4, 1e-3, 1e-2, 0.1])
    def test_bound_on_wide_magnitude_data(self, rel):
        r = np.random.default_rng(0)
        # Magnitudes spanning 12 decades with both signs.
        data = (
            r.choice([-1.0, 1.0], 5000)
            * 10.0 ** r.uniform(-6, 6, 5000)
        ).astype(np.float32)
        _check_pwrel(data, rel, 1e-35)

    def test_bound_on_smooth_field(self, smooth3d):
        _check_pwrel(smooth3d, 1e-3, 1e-35)

    def test_zeros_reconstruct_exactly(self, sparse3d):
        recon = _check_pwrel(sparse3d, 1e-2, 1e-35)
        assert ((sparse3d == 0) == (recon == 0)).all()

    def test_signs_preserved(self):
        r = np.random.default_rng(1)
        data = (r.standard_normal(2000) * 100).astype(np.float32)
        comp = SZPointwiseRelative(error_bound=1e-2)
        recon = comp.decompress(comp.compress(data))
        nz = data != 0
        assert (np.sign(recon[nz]) == np.sign(data[nz])).all()

    def test_beats_abs_mode_on_multi_scale_data(self):
        """The mode's raison d'etre: on magnitude-spanning data, pw-rel at
        1% error compresses while an abs bound protecting the smallest
        values cannot."""
        r = np.random.default_rng(2)
        # Smoothly varying exponent spanning 10 decades (halo-to-void-like).
        exponent = np.cumsum(r.normal(0, 0.05, 20000))
        exponent = 10.0 * (exponent - exponent.min()) / (np.ptp(exponent) + 1e-9) - 5.0
        data = (10.0**exponent).astype(np.float32)
        pwrel = SZPointwiseRelative(error_bound=0.01)
        f_rel = pwrel.compress(data)
        # Abs bound that gives the smallest magnitudes the same protection.
        abs_bound = 0.01 * float(np.abs(data[data != 0]).min())
        f_abs = make_compressor("sz", error_bound=abs_bound).compress(data)
        assert f_rel.ratio > f_abs.ratio * 2

    def test_2d_shape_preserved(self, smooth2d):
        comp = SZPointwiseRelative(error_bound=1e-3)
        recon = comp.decompress(comp.compress(smooth2d))
        assert recon.shape == smooth2d.shape
        assert recon.dtype == smooth2d.dtype

    def test_registry_and_describe(self):
        comp = make_compressor("sz-pwrel", error_bound=0.05)
        assert isinstance(comp, SZPointwiseRelative)
        assert comp.describe() == "sz-pwrel:pwrel"

    def test_rejects_nan(self):
        data = np.array([1.0, np.nan], dtype=np.float32)
        with pytest.raises(ValueError):
            SZPointwiseRelative().compress(data)

    def test_rejects_nonpositive_bound(self, smooth2d):
        with pytest.raises(ValueError):
            SZPointwiseRelative(error_bound=0).compress(smooth2d)

    def test_fraz_drives_pwrel(self):
        from repro.core.training import train

        r = np.random.default_rng(3)
        data = (10.0 ** r.uniform(-3, 3, 8000)).astype(np.float32)
        res = train(SZPointwiseRelative(), data, 4.0, tolerance=0.2,
                    regions=4, max_calls_per_region=10, seed=0)
        assert res.ratio > 1.0
        assert res.error_bound <= 0.5  # rel bounds live in (0, 0.5]

    def test_default_bound_range(self, smooth2d):
        lo, hi = SZPointwiseRelative().default_bound_range(smooth2d)
        assert lo == 1e-9 and hi == 0.5
