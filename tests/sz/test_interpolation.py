"""Tests for the SZ3-style interpolation compressor."""

import numpy as np
import pytest

from repro.pressio import make_compressor
from repro.sz.interpolation import (
    SZInterpolationCompressor,
    _num_levels,
    _pass_slicers,
)


def _maxerr(a, b):
    return float(np.abs(a.astype(np.float64) - b.astype(np.float64)).max())


class TestLevels:
    def test_small_grid_no_levels(self):
        # ceil(dim / 2) must keep >= 4 anchor points per axis.
        assert _num_levels((6,)) == 0
        assert _num_levels((5, 5)) == 0
        assert _num_levels((7, 7)) == 1  # ceil(7/2) = 4 anchors

    def test_larger_grids(self):
        assert _num_levels((64,)) >= 3
        assert _num_levels((64, 64, 64)) >= 3

    def test_cap(self):
        assert _num_levels((10**6,), max_levels=4) == 4


class TestPassSlicers:
    def test_1d_counts(self):
        # stride 4 on 11 points: targets at 2, 6, 10.
        slicers = _pass_slicers((11,), 4, 0)
        target, left, right = slicers
        idx = np.arange(11)
        assert idx[target].tolist() == [2, 6, 10]
        assert idx[left].tolist() == [0, 4, 8]
        assert idx[right].tolist() == [4, 8]  # last target has no right

    def test_degenerate_axis_none(self):
        assert _pass_slicers((1,), 2, 0) is None

    def test_pass_coverage_full_grid(self):
        """Anchors plus all passes visit every point exactly once."""
        shape = (13, 10)
        comp = SZInterpolationCompressor()
        levels = _num_levels(shape)
        stride0 = 2**levels
        seen = np.zeros(shape, dtype=int)
        seen[(slice(0, None, stride0),) * 2] += 1
        for stride, axis in comp._passes(shape):
            slicers = _pass_slicers(shape, stride, axis)
            if slicers is not None:
                seen[slicers[0]] += 1
        assert (seen == 1).all()


class TestRoundtrip:
    @pytest.mark.parametrize("eb", [1e-4, 1e-3, 1e-2, 1e-1])
    def test_bound_3d(self, smooth3d, eb):
        c = SZInterpolationCompressor(error_bound=eb)
        assert _maxerr(smooth3d, c.decompress(c.compress(smooth3d))) <= eb

    def test_bound_2d_1d(self, smooth2d, smooth1d):
        c = SZInterpolationCompressor(error_bound=1e-3)
        for data in (smooth2d, smooth1d):
            assert _maxerr(data, c.decompress(c.compress(data))) <= 1e-3

    def test_bound_sparse_and_rough(self, sparse3d, rough1d):
        c = SZInterpolationCompressor(error_bound=1e-2)
        for data in (sparse3d, rough1d):
            assert _maxerr(data, c.decompress(c.compress(data))) <= 1e-2

    def test_odd_shapes(self):
        r = np.random.default_rng(0)
        for shape in [(17, 23, 9), (31,), (5, 5), (4, 4, 4)]:
            data = r.standard_normal(shape).astype(np.float32)
            c = SZInterpolationCompressor(error_bound=1e-2)
            recon = c.decompress(c.compress(data))
            assert recon.shape == shape
            assert _maxerr(data, recon) <= 1e-2

    def test_float64(self, smooth2d):
        data = smooth2d.astype(np.float64)
        c = SZInterpolationCompressor(error_bound=1e-9)
        recon = c.decompress(c.compress(data))
        assert recon.dtype == np.float64
        assert _maxerr(data, recon) <= 1e-9

    def test_empty(self):
        c = SZInterpolationCompressor()
        assert c.decompress(c.compress(np.zeros((0,), np.float32))).shape == (0,)

    def test_nan_roundtrips_as_literal(self):
        data = np.ones((16, 16), np.float32)
        data[5, 5] = np.nan
        c = SZInterpolationCompressor(error_bound=1e-3)
        recon = c.decompress(c.compress(data))
        assert np.isnan(recon[5, 5])


class TestBehaviour:
    def test_beats_blockwise_sz_on_smooth_data(self):
        """SZ3's headline: interpolation prediction outperforms the SZ2
        hybrid on smooth fields at loose bounds (on rough/noisy fields the
        block hybrid can still win — as in the real systems)."""
        x, y, z = np.meshgrid(
            np.linspace(0, 4, 40), np.linspace(0, 4, 40), np.linspace(0, 4, 20),
            indexing="ij",
        )
        data = (np.sin(x) * np.cos(y) * np.exp(-0.1 * z)).astype(np.float32)
        interp = SZInterpolationCompressor(error_bound=1e-2).compress(data)
        block = make_compressor("sz", error_bound=1e-2).compress(data)
        assert interp.ratio > block.ratio

    def test_ratio_grows_with_bound(self, smooth3d):
        r1 = SZInterpolationCompressor(error_bound=1e-4).compress(smooth3d).ratio
        r2 = SZInterpolationCompressor(error_bound=1e-1).compress(smooth3d).ratio
        assert r2 > r1

    def test_registry_and_describe(self):
        c = make_compressor("sz-interp", error_bound=0.5)
        assert isinstance(c, SZInterpolationCompressor)
        assert c.describe() == "sz-interp:abs"

    def test_fraz_drives_interp(self, smooth3d):
        from repro.core.training import train

        res = train(SZInterpolationCompressor(), smooth3d, 10.0,
                    tolerance=0.1, regions=4, seed=0)
        assert res.feasible

    def test_validation(self, smooth2d):
        with pytest.raises(ValueError):
            SZInterpolationCompressor(error_bound=0).compress(smooth2d)
        with pytest.raises(TypeError):
            SZInterpolationCompressor().compress(np.arange(10))
