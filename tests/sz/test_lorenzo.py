"""Unit tests for the Lorenzo predictor and wavefront machinery."""

import numpy as np
import pytest

from repro.sz.lorenzo import (
    WavefrontPlan,
    lorenzo_offsets,
    lorenzo_predict_full,
    wavefront_plan,
)


class TestOffsets:
    def test_1d(self):
        assert lorenzo_offsets(1) == [((1,), 1)]

    def test_2d_signs(self):
        offs = dict(lorenzo_offsets(2))
        assert offs[(1, 0)] == 1
        assert offs[(0, 1)] == 1
        assert offs[(1, 1)] == -1

    def test_3d_count_and_sign_sum(self):
        offs = lorenzo_offsets(3)
        assert len(offs) == 7
        # Inclusion-exclusion weights sum to 1 -> constant fields predicted exactly.
        assert sum(sign for _, sign in offs) == 1

    def test_invalid_ndim(self):
        with pytest.raises(ValueError):
            lorenzo_offsets(0)


class TestWavefrontPlan:
    @pytest.mark.parametrize("shape", [(7,), (5, 4), (3, 4, 5)])
    def test_planes_partition_all_points(self, shape):
        plan = WavefrontPlan(shape)
        seen = np.concatenate(plan.planes)
        assert np.sort(seen).tolist() == list(range(int(np.prod(shape))))

    def test_plane_index_sums_match(self):
        plan = WavefrontPlan((3, 4))
        for s, plane in enumerate(plan.planes):
            coords = plan.coords[:, plane]
            assert (coords.sum(axis=0) == s).all()

    def test_cache_returns_same_object(self):
        assert wavefront_plan((6, 6)) is wavefront_plan((6, 6))

    def test_predict_plane_zero_border(self):
        # First plane (origin) has no neighbours -> prediction 0.
        plan = WavefrontPlan((4, 4))
        recon = np.arange(16, dtype=np.float64)
        pred = plan.predict_plane(recon, plan.planes[0])
        assert pred.tolist() == [0.0]

    def test_predict_plane_matches_manual_2d(self):
        plan = WavefrontPlan((3, 3))
        recon = np.arange(9, dtype=np.float64)  # row-major grid values
        # Point (1,1) -> flat 4; pred = f(0,1) + f(1,0) - f(0,0) = 1 + 3 - 0.
        plane = np.array([4])
        pred = plan.predict_plane(recon, plane)
        assert pred.tolist() == [4.0]


class TestLorenzoPredictFull:
    @pytest.mark.parametrize("shape", [(50,), (12, 13), (6, 7, 8)])
    def test_constant_field_interior_exact(self, shape):
        data = np.full(shape, 3.7)
        pred = lorenzo_predict_full(data)
        interior = tuple(slice(1, None) for _ in shape)
        assert np.allclose(pred[interior], 3.7)

    def test_linear_field_interior_exact_2d(self):
        i, j = np.meshgrid(np.arange(10.0), np.arange(12.0), indexing="ij")
        data = 2 * i + 3 * j + 1
        pred = lorenzo_predict_full(data)
        assert np.allclose(pred[1:, 1:], data[1:, 1:])

    def test_linear_field_interior_exact_3d(self):
        i, j, k = np.meshgrid(
            np.arange(6.0), np.arange(7.0), np.arange(8.0), indexing="ij"
        )
        data = 1.5 * i - 2.0 * j + 0.5 * k
        pred = lorenzo_predict_full(data)
        assert np.allclose(pred[1:, 1:, 1:], data[1:, 1:, 1:])

    def test_border_uses_zero_padding(self):
        data = np.ones((4, 4))
        pred = lorenzo_predict_full(data)
        assert pred[0, 0] == 0.0  # no neighbours at origin
