"""Property-based tests for the mergeable fixed-bucket histogram.

The histogram backs every latency figure the service reports (``/metrics``,
``/stats``, BENCH snapshots), so its invariants are load-bearing:

* bucket counts always sum to the observation count;
* quantile estimates are monotone in ``q`` and never leave ``[min, max]``;
* merging histograms is exactly observation-concatenation (counts and
  extrema identical; sums equal up to float re-association).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, Histogram

_SETTINGS = dict(max_examples=80, deadline=None)

#: Latency-like values spanning below, inside and above the bucket ladder.
_values = st.floats(min_value=0.0, max_value=120.0,
                    allow_nan=False, allow_infinity=False)
_samples = st.lists(_values, min_size=0, max_size=60)


def _filled(values) -> Histogram:
    h = Histogram(DEFAULT_LATENCY_BUCKETS)
    for v in values:
        h.observe(v)
    return h


class TestCountInvariants:
    @given(_samples)
    @settings(**_SETTINGS)
    def test_bucket_counts_sum_to_observations(self, values):
        h = _filled(values)
        assert sum(h.bucket_counts()) == len(values)
        assert h.count == len(values)

    @given(_samples)
    @settings(**_SETTINGS)
    def test_cumulative_counts_monotone_and_complete(self, values):
        h = _filled(values)
        cumulative = h.cumulative_counts()
        assert cumulative == sorted(cumulative)
        assert (cumulative[-1] if cumulative else 0) == len(values)

    @given(st.lists(_values, min_size=1, max_size=60))
    @settings(**_SETTINGS)
    def test_every_observation_lands_in_exactly_one_bucket(self, values):
        h = _filled(values)
        below = [sum(1 for v in values if v <= b) for b in h.bounds]
        assert h.cumulative_counts()[:-1] == below


class TestQuantileInvariants:
    @given(st.lists(_values, min_size=1, max_size=60))
    @settings(**_SETTINGS)
    def test_quantiles_bounded_by_min_and_max(self, values):
        h = _filled(values)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            est = h.quantile(q)
            assert min(values) <= est <= max(values)

    @given(st.lists(_values, min_size=1, max_size=60))
    @settings(**_SETTINGS)
    def test_quantiles_monotone_in_q(self, values):
        h = _filled(values)
        qs = [0.0, 0.1, 0.5, 0.75, 0.9, 0.99, 1.0]
        estimates = [h.quantile(q) for q in qs]
        assert estimates == sorted(estimates)

    @given(st.lists(_values, min_size=1, max_size=60))
    @settings(**_SETTINGS)
    def test_quantile_error_bounded_by_owning_bucket(self, values):
        """The estimate sits in (or at the edge of) the true value's bucket."""
        h = _filled(values)
        true_median = sorted(values)[(len(values) - 1) // 2]
        est = h.quantile(0.5)
        # Both land within one bucket of each other on the shared ladder.
        import bisect

        true_idx = bisect.bisect_left(h.bounds, true_median)
        est_idx = bisect.bisect_left(h.bounds, est)
        assert abs(true_idx - est_idx) <= 1


class TestMergeInvariants:
    @given(_samples, _samples)
    @settings(**_SETTINGS)
    def test_merge_equals_concatenation(self, left, right):
        merged = _filled(left)
        merged.merge(_filled(right))
        combined = _filled(left + right)
        assert merged.bucket_counts() == combined.bucket_counts()
        assert merged.count == combined.count
        assert merged.min == combined.min
        assert merged.max == combined.max
        # Sums associate differently; equality only up to float error.
        assert merged.sum == pytest.approx(combined.sum, rel=1e-9, abs=1e-12)

    @given(_samples, _samples)
    @settings(**_SETTINGS)
    def test_merge_quantiles_match_concatenation(self, left, right):
        merged = _filled(left)
        merged.merge(_filled(right))
        combined = _filled(left + right)
        for q in (0.5, 0.9, 0.99):
            a, b = merged.quantile(q), combined.quantile(q)
            assert (a is None) == (b is None)
            if a is not None:
                assert a == pytest.approx(b, rel=1e-9, abs=1e-12)

    @given(_samples)
    @settings(**_SETTINGS)
    def test_merge_empty_is_identity(self, values):
        h = _filled(values)
        before = (h.bucket_counts(), h.count, h.sum, h.min, h.max)
        h.merge(Histogram(DEFAULT_LATENCY_BUCKETS))
        assert (h.bucket_counts(), h.count, h.sum, h.min, h.max) == before
