"""Property-based tests for the optimizer, regions and FRaZ invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regions import split_regions
from repro.optimize import find_global_min

_SETTINGS = dict(max_examples=50, deadline=None)


class TestOptimizerProperties:
    @given(
        st.floats(-100, 100),
        st.floats(0.1, 100),
        st.integers(5, 40),
        st.integers(0, 1000),
    )
    @settings(**_SETTINGS)
    def test_probes_stay_in_bounds(self, lower, width, max_calls, seed):
        upper = lower + width
        f = lambda x: np.sin(x) + 0.01 * x
        r = find_global_min(f, lower, upper, max_calls=max_calls, seed=seed)
        assert all(lower <= h.x <= upper for h in r.history)

    @given(st.integers(1, 30), st.integers(0, 100))
    @settings(**_SETTINGS)
    def test_budget_respected(self, max_calls, seed):
        r = find_global_min(lambda x: x * x, -1, 1, max_calls=max_calls, seed=seed)
        assert r.n_calls <= max_calls

    @given(st.integers(0, 100))
    @settings(**_SETTINGS)
    def test_best_equals_history_min(self, seed):
        f = lambda x: np.cos(3 * x) * np.exp(-0.1 * x)
        r = find_global_min(f, 0, 10, max_calls=20, seed=seed)
        assert r.f_best == min(h.fx for h in r.history)
        assert any(h.x == r.x_best for h in r.history)

    @given(st.floats(0.01, 10), st.integers(0, 50))
    @settings(**_SETTINGS)
    def test_cutoff_semantics(self, cutoff, seed):
        f = lambda x: abs(x - 5)
        r = find_global_min(f, 0, 10, max_calls=60, cutoff=cutoff, seed=seed)
        if r.hit_cutoff:
            assert r.f_best <= cutoff


class TestRegionProperties:
    @given(
        st.floats(-1e3, 1e3),
        st.floats(0.01, 1e3),
        st.integers(1, 40),
        st.floats(0, 0.49),
    )
    @settings(**_SETTINGS)
    def test_cover_and_order(self, lower, width, k, overlap):
        upper = lower + width
        regions = split_regions(lower, upper, k, overlap)
        assert len(regions) == k
        assert regions[0][0] == lower
        assert regions[-1][1] == upper
        for lo, hi in regions:
            assert lower <= lo < hi <= upper
        # Consecutive regions connect (no gaps).
        for (_, hi_prev), (lo_next, _) in zip(regions, regions[1:]):
            assert lo_next <= hi_prev

    @given(st.integers(2, 30))
    @settings(**_SETTINGS)
    def test_interior_widths_equal(self, k):
        regions = split_regions(0.0, 1.0, k, overlap=0.1)
        widths = [hi - lo for lo, hi in regions[1:-1]]
        if widths:
            assert max(widths) - min(widths) < 1e-12
