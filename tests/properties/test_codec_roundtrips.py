"""Property-based tests: every lossless codec round-trips exactly."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codecs.bitstream import BitReader, pack_bits
from repro.codecs.huffman import HuffmanCodec
from repro.codecs.lz77 import lz77_compress, lz77_decompress
from repro.codecs.rle import rle_decode, rle_encode
from repro.codecs.varint import (
    decode_uvarints,
    encode_uvarints,
    zigzag_decode,
    zigzag_encode,
)
from repro.codecs.zlib_codec import ZlibCodec

_SETTINGS = dict(max_examples=40, deadline=None)


class TestBitstreamProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 2**30), st.integers(1, 31)),
            min_size=0,
            max_size=200,
        )
    )
    @settings(**_SETTINGS)
    def test_pack_then_cursor_read(self, items):
        codes = np.array([c & ((1 << l) - 1) for c, l in items], dtype=np.uint64)
        lengths = np.array([l for _, l in items], dtype=np.int64)
        packed = pack_bits(codes, lengths)
        reader = BitReader(packed)
        for code, length in zip(codes, lengths):
            assert reader.read(int(length)) == int(code)


class TestHuffmanProperties:
    @given(
        arrays(
            np.int64,
            st.integers(1, 2000),
            elements=st.integers(-(2**40), 2**40),
        )
    )
    @settings(**_SETTINGS)
    def test_roundtrip(self, data):
        codec = HuffmanCodec()
        assert (codec.decode(codec.encode(data)) == data).all()

    @given(st.integers(1, 500), st.integers(1, 8))
    @settings(**_SETTINGS)
    def test_roundtrip_small_alphabet(self, n, alphabet):
        r = np.random.default_rng(n)
        data = r.integers(0, alphabet, n).astype(np.int64)
        codec = HuffmanCodec()
        assert (codec.decode(codec.encode(data)) == data).all()


class TestLZ77Properties:
    @given(st.binary(min_size=0, max_size=3000))
    @settings(**_SETTINGS)
    def test_roundtrip(self, payload):
        assert lz77_decompress(lz77_compress(payload)) == payload

    @given(st.binary(min_size=1, max_size=200), st.integers(2, 20))
    @settings(**_SETTINGS)
    def test_roundtrip_repeated(self, unit, reps):
        payload = unit * reps
        assert lz77_decompress(lz77_compress(payload)) == payload


class TestZlibProperties:
    @given(st.binary(max_size=3000))
    @settings(**_SETTINGS)
    def test_roundtrip(self, payload):
        codec = ZlibCodec()
        assert codec.decompress(codec.compress(payload)) == payload


class TestVarintProperties:
    @given(st.lists(st.integers(0, 2**63 - 1), max_size=200))
    @settings(**_SETTINGS)
    def test_uvarints_roundtrip(self, values):
        arr = np.array(values, dtype=np.uint64)
        blob = encode_uvarints(arr)
        decoded, off = decode_uvarints(blob, arr.size)
        assert off == len(blob)
        assert (decoded == arr).all()

    @given(
        arrays(
            np.int64,
            st.integers(0, 300),
            elements=st.integers(-(2**62), 2**62),
        )
    )
    @settings(**_SETTINGS)
    def test_zigzag_roundtrip(self, values):
        assert (zigzag_decode(zigzag_encode(values)) == values).all()


class TestRLEProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 255), st.integers(1, 50)),
            max_size=100,
        )
    )
    @settings(**_SETTINGS)
    def test_roundtrip(self, runs):
        if runs:
            arr = np.concatenate(
                [np.full(n, v, np.uint8) for v, n in runs]
            )
        else:
            arr = np.zeros(0, np.uint8)
        assert (rle_decode(rle_encode(arr)) == arr).all()
