"""Property-based tests: the central invariant of every ``abs``-mode
compressor is ``max|d - d'| <= error_bound`` for arbitrary inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mgard.compressor import MGARDCompressor
from repro.sz.compressor import SZCompressor
from repro.zfp.compressor import ZFPCompressor

_SETTINGS = dict(max_examples=25, deadline=None)

_FINITE32 = st.floats(
    min_value=np.float32(-1e30),
    max_value=np.float32(1e30),
    allow_nan=False,
    allow_infinity=False,
    width=32,
)


def _field(draw, shapes):
    shape = draw(shapes)
    n = int(np.prod(shape))
    seed = draw(st.integers(0, 2**31))
    kind = draw(st.sampled_from(["smooth", "noise", "sparse", "mixed"]))
    r = np.random.default_rng(seed)
    if kind == "smooth":
        base = r.standard_normal(n).cumsum()
    elif kind == "noise":
        base = r.standard_normal(n) * draw(st.floats(1e-3, 1e3))
    elif kind == "sparse":
        base = r.standard_normal(n)
        base[base < 1.0] = 0.0
    else:
        base = r.standard_normal(n).cumsum() + 10 * (r.random(n) < 0.01)
    return base.reshape(shape).astype(np.float32)


@st.composite
def fields_1to3d(draw):
    shapes = st.sampled_from([(64,), (500,), (13, 17), (24, 24), (7, 9, 11), (12, 12, 12)])
    return _field(draw, shapes)


@st.composite
def fields_2to3d(draw):
    shapes = st.sampled_from([(13, 17), (24, 24), (7, 9, 11), (12, 12, 12)])
    return _field(draw, shapes)


_BOUNDS = st.floats(min_value=1e-6, max_value=10.0, allow_nan=False)


def _check(compressor, data, eb):
    recon = compressor.decompress(compressor.compress(data))
    assert recon.shape == data.shape
    assert recon.dtype == data.dtype
    err = np.abs(recon.astype(np.float64) - data.astype(np.float64)).max()
    assert err <= eb, f"bound {eb} violated: max err {err}"


class TestSZBound:
    @given(fields_1to3d(), _BOUNDS)
    @settings(**_SETTINGS)
    def test_abs_bound(self, data, eb):
        _check(SZCompressor(error_bound=eb), data, eb)

    @given(fields_1to3d(), _BOUNDS)
    @settings(max_examples=10, deadline=None)
    def test_abs_bound_pure_lorenzo(self, data, eb):
        _check(SZCompressor(error_bound=eb, use_regression=False), data, eb)


class TestZFPBound:
    @given(fields_1to3d(), _BOUNDS)
    @settings(**_SETTINGS)
    def test_abs_bound(self, data, eb):
        _check(ZFPCompressor(error_bound=eb), data, eb)


class TestMGARDBound:
    @given(fields_2to3d(), _BOUNDS)
    @settings(**_SETTINGS)
    def test_abs_bound(self, data, eb):
        _check(MGARDCompressor(error_bound=eb), data, eb)


class TestExtremeValues:
    @given(st.lists(_FINITE32, min_size=4, max_size=64), _BOUNDS)
    @settings(**_SETTINGS)
    def test_sz_arbitrary_floats(self, values, eb):
        data = np.array(values, dtype=np.float32)
        _check(SZCompressor(error_bound=eb), data, eb)

    @given(st.lists(_FINITE32, min_size=4, max_size=64), _BOUNDS)
    @settings(**_SETTINGS)
    def test_zfp_arbitrary_floats(self, values, eb):
        data = np.array(values, dtype=np.float32)
        _check(ZFPCompressor(error_bound=eb), data, eb)
