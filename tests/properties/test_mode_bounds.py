"""Property-based tests for the extended error-control modes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import mse
from repro.mgard.compressor import MGARDCompressor
from repro.sz.compressor import SZCompressor
from repro.zfp.compressor import ZFPPrecisionCompressor

_SETTINGS = dict(max_examples=20, deadline=None)


def _field(seed: int, shape: tuple[int, ...], kind: str) -> np.ndarray:
    r = np.random.default_rng(seed)
    n = int(np.prod(shape))
    if kind == "smooth":
        base = r.standard_normal(n).cumsum()
    elif kind == "noise":
        base = r.standard_normal(n) * 100.0
    else:
        base = r.standard_normal(n)
        base[base < 0.5] = 0.0
    return base.reshape(shape).astype(np.float32)


_KINDS = st.sampled_from(["smooth", "noise", "sparse"])
_SEEDS = st.integers(0, 2**31)


class TestSZRelativeBound:
    @given(
        _SEEDS,
        st.sampled_from([(200,), (15, 14), (8, 9, 10)]),
        _KINDS,
        st.floats(1e-6, 0.5),
    )
    @settings(**_SETTINGS)
    def test_rel_bound_holds(self, seed, shape, kind, rel):
        data = _field(seed, shape, kind)
        span = float(data.max() - data.min())
        comp = SZCompressor(error_bound=rel, bound_mode="rel")
        recon = comp.decompress(comp.compress(data))
        err = np.abs(recon.astype(np.float64) - data.astype(np.float64)).max()
        allowed = rel * (span if span > 0 else 1.0)
        assert err <= allowed


class TestMGARDMSEBound:
    @given(
        _SEEDS,
        st.sampled_from([(15, 14), (8, 9, 10)]),
        _KINDS,
        st.floats(1e-8, 1.0),
    )
    @settings(**_SETTINGS)
    def test_mse_bound_holds(self, seed, shape, kind, target):
        data = _field(seed, shape, kind)
        comp = MGARDCompressor(error_bound=target, norm="l2")
        recon = comp.decompress(comp.compress(data))
        assert mse(data, recon) <= target


class TestZFPPrecisionMonotone:
    @given(_SEEDS, st.sampled_from([(64,), (12, 12)]), _KINDS)
    @settings(**_SETTINGS)
    def test_error_nonincreasing_in_precision(self, seed, shape, kind):
        data = _field(seed, shape, kind)
        errs = []
        for planes in (4, 12, 24):
            comp = ZFPPrecisionCompressor(error_bound=planes)
            recon = comp.decompress(comp.compress(data))
            errs.append(
                float(np.abs(recon.astype(np.float64) - data.astype(np.float64)).max())
            )
        assert errs[0] >= errs[1] >= errs[2]
