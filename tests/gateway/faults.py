"""Deterministic fault injection for gateway failover tests.

A :class:`FaultyCluster` is an in-process :class:`GatewayServer` (so
tests can read the router's state directly instead of sleeping and
guessing) fronting N **real OS-process** worker nodes started exactly as
an operator would start them (``python -m repro serve --register ...``).
Real processes are the point: faults are POSIX signals, which produce
precisely the failure modes the gateway must survive —

``kill``    ``SIGKILL`` — the node vanishes; its sockets die; the next
            connection attempt is refused.  Crash-equivalent.
``hang``    ``SIGSTOP`` — the process freezes but its listen socket
            stays *open* (the kernel keeps accepting); heartbeats stop.
            This is the insidious case: TCP reachability alone would
            call the node healthy, only heartbeat silence reveals it.
``unhang``  ``SIGCONT`` — the frozen node resumes, heartbeats again,
            and should be resurrected, not shunned.

A hang shorter than ``dead_after`` models a *slow* node (GC pause, CPU
steal) that must NOT trigger failover.

The harness never sleeps for "long enough": tests synchronise on
observable state — the node's ``/stats`` ``running`` count to catch a
job genuinely mid-execution, the router's owed set for un-acked jobs,
the registry's counts for death/resurrection.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

from repro.gateway import GatewayServer
from repro.serve import ServiceClient, ServiceError, ServiceUnavailableError

ROOT = Path(__file__).resolve().parent.parent.parent


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_until(predicate, timeout: float = 30.0, interval: float = 0.02,
               message: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError(f"timed out waiting for {message}")
        time.sleep(interval)


class FaultyCluster:
    """One gateway + N subprocess nodes, with signals as the fault model."""

    def __init__(
        self,
        n_nodes: int = 3,
        heartbeat_interval: float = 0.2,
        dead_after: float = 1.0,
        check_interval: float = 0.05,
        executor: str = "thread",
        workers: int = 1,
    ) -> None:
        self.executor = executor
        self.workers = workers
        # client_timeout bounds how long a gateway->node HTTP call can
        # stall on a *hung* (SIGSTOPped) node: the kernel accepts the
        # connection but nothing ever answers.
        self.gateway = GatewayServer(
            port=0, heartbeat_interval=heartbeat_interval,
            dead_after=dead_after, check_interval=check_interval,
            client_timeout=5.0,
        ).start()
        self.procs: dict[str, subprocess.Popen] = {}
        self.urls: dict[str, str] = {}
        for i in range(n_nodes):
            self.spawn(f"n{i}")

    # -- fleet management --------------------------------------------------
    def spawn(self, node_id: str) -> None:
        port = free_port()
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        self.procs[node_id] = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", str(port),
             "--workers", str(self.workers), "--executor", self.executor,
             "--no-cache", "--register", self.gateway.url,
             "--node-id", node_id],
            env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        self.urls[node_id] = f"http://127.0.0.1:{port}"

    def wait_fleet(self, active: int, timeout: float = 60.0) -> None:
        wait_until(
            lambda: self.gateway.router.registry.counts()["active"] >= active,
            timeout=timeout, message=f"{active} active nodes")

    # -- clients -----------------------------------------------------------
    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient(self.gateway.url, **kwargs)

    def node_client(self, node_id: str) -> ServiceClient:
        return ServiceClient(self.urls[node_id], timeout=5.0)

    # -- observations ------------------------------------------------------
    def running_on(self, node_id: str) -> int:
        """Jobs currently *executing* on a node (0 if unreachable)."""
        try:
            return int(self.node_client(node_id).stats()["jobs"]["running"])
        except (ServiceError, ServiceUnavailableError, OSError):
            return 0

    def owed_by(self, node_id: str) -> set:
        """Gateway jobs the node has not had acked (the failover set)."""
        with self.gateway.router._lock:
            return set(self.gateway.router._owed.get(node_id, ()))

    def counts(self) -> dict:
        return self.gateway.router.registry.counts()

    def gateway_stat(self, name: str) -> int:
        return getattr(self.gateway.router.stats, name)

    def metric_value(self, line_prefix: str) -> float:
        """Value of the first ``/metrics`` sample starting with a prefix."""
        for line in self.client().metrics_text().splitlines():
            if line.startswith(line_prefix):
                return float(line.rsplit(" ", 1)[1])
        raise KeyError(f"no metric sample starts with {line_prefix!r}")

    def socket_accepts(self, node_id: str) -> bool:
        """True if the node's port still accepts TCP (even while hung)."""
        host, port = self.urls[node_id].removeprefix("http://").split(":")
        try:
            with socket.create_connection((host, int(port)), timeout=1.0):
                return True
        except OSError:
            return False

    # -- faults ------------------------------------------------------------
    def kill(self, node_id: str) -> None:
        """SIGKILL: the node vanishes without any goodbye."""
        self.procs[node_id].send_signal(signal.SIGKILL)
        self.procs[node_id].wait(10)

    def hang(self, node_id: str) -> None:
        """SIGSTOP: frozen mid-everything, listen socket still open."""
        self.procs[node_id].send_signal(signal.SIGSTOP)

    def unhang(self, node_id: str) -> None:
        """SIGCONT: the hung node resumes where it stopped."""
        self.procs[node_id].send_signal(signal.SIGCONT)

    # -- teardown ----------------------------------------------------------
    def node_log(self, node_id: str) -> str:
        proc = self.procs[node_id]
        if proc.poll() is None or proc.stdout is None:
            return ""
        return proc.stdout.read() or ""

    def close(self) -> None:
        for proc in self.procs.values():
            if proc.poll() is None:
                proc.send_signal(signal.SIGCONT)  # can't kill a stopped pid group cleanly
                proc.terminate()
        for proc in self.procs.values():
            try:
                proc.wait(10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(10)
            if proc.stdout is not None:
                proc.stdout.close()
        self.gateway.shutdown()

    def __enter__(self) -> "FaultyCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
