"""Unit tests for fleet membership: heartbeats, drain, death, resurrection."""

from __future__ import annotations

import time

import pytest

from repro.gateway import NodeRegistry, NodeState


def make_registry(dead_after: float = 0.2) -> NodeRegistry:
    return NodeRegistry(dead_after=dead_after, replicas=16)


class TestMembership:
    def test_register_makes_node_routable(self):
        reg = make_registry()
        reg.register("a", "http://127.0.0.1:9001")
        record = reg.route("some-key")
        assert record is not None and record.node_id == "a"

    def test_register_rejects_bad_ids_and_urls(self):
        reg = make_registry()
        with pytest.raises(ValueError):
            reg.register("", "http://x")
        with pytest.raises(ValueError):
            reg.register("has/slash", "http://x")
        with pytest.raises(ValueError):
            reg.register("ok", "ftp://nope")

    def test_reregister_updates_url_and_resurrects(self):
        reg = make_registry(dead_after=0.01)
        reg.register("a", "http://127.0.0.1:9001")
        time.sleep(0.05)
        assert [r.node_id for r in reg.reap()] == ["a"]
        assert reg.get("a").state == NodeState.DEAD
        record = reg.register("a", "http://127.0.0.1:9999")
        assert record.state == NodeState.ACTIVE
        assert record.url == "http://127.0.0.1:9999"
        assert reg.route("key").node_id == "a"

    def test_unregister_removes_from_routing(self):
        reg = make_registry()
        reg.register("a", "http://127.0.0.1:9001")
        record = reg.unregister("a")
        assert record.state == NodeState.LEFT
        assert reg.route("key") is None
        assert reg.unregister("ghost") is None

    def test_left_node_heartbeat_is_rejected(self):
        reg = make_registry()
        reg.register("a", "http://127.0.0.1:9001")
        reg.unregister("a")
        assert reg.heartbeat("a") is None  # must re-register


class TestLiveness:
    def test_heartbeat_keeps_node_alive(self):
        reg = make_registry(dead_after=0.15)
        reg.register("a", "http://127.0.0.1:9001")
        for _ in range(3):
            time.sleep(0.05)
            assert reg.heartbeat("a") is not None
            assert reg.reap() == []
        assert reg.get("a").heartbeats == 3

    def test_silent_node_is_reaped_once(self):
        reg = make_registry(dead_after=0.05)
        reg.register("a", "http://127.0.0.1:9001")
        reg.register("b", "http://127.0.0.1:9002")
        reg.heartbeat("b")
        time.sleep(0.1)
        dead = reg.reap()
        assert {r.node_id for r in dead} == {"a", "b"}
        assert reg.reap() == []  # already dead: not "newly dead" again
        assert reg.route("key") is None

    def test_heartbeat_resurrects_dead_node(self):
        reg = make_registry(dead_after=0.05)
        reg.register("a", "http://127.0.0.1:9001")
        time.sleep(0.1)
        reg.reap()
        assert reg.get("a").deaths == 1
        record = reg.heartbeat("a", reported={"running": 0})
        assert record.state == NodeState.ACTIVE
        assert reg.route("key").node_id == "a"
        assert record.reported == {"running": 0}

    def test_unknown_node_heartbeat_asks_for_reregistration(self):
        reg = make_registry()
        assert reg.heartbeat("stranger") is None


class TestDrain:
    def test_drain_removes_from_ring_but_stays_alive(self):
        reg = make_registry()
        reg.register("a", "http://127.0.0.1:9001")
        reg.register("b", "http://127.0.0.1:9002")
        record = reg.drain("a")
        assert record.state == NodeState.DRAINING
        for key in (f"k{i}" for i in range(50)):
            assert reg.route(key).node_id == "b"
        # Still expected to heartbeat — and counted as alive.
        assert reg.heartbeat("a") is not None
        assert reg.counts()[NodeState.DRAINING] == 1

    def test_draining_node_is_still_reaped_on_silence(self):
        reg = make_registry(dead_after=0.05)
        reg.register("a", "http://127.0.0.1:9001")
        reg.drain("a")
        time.sleep(0.1)
        assert [r.node_id for r in reg.reap()] == ["a"]

    def test_undrain_restores_routing(self):
        reg = make_registry()
        reg.register("a", "http://127.0.0.1:9001")
        reg.drain("a")
        assert reg.route("key") is None
        record = reg.undrain("a")
        assert record.state == NodeState.ACTIVE
        assert reg.route("key").node_id == "a"

    def test_drain_is_idempotent_and_safe_on_unknown(self):
        reg = make_registry()
        reg.register("a", "http://127.0.0.1:9001")
        assert reg.drain("a").state == NodeState.DRAINING
        assert reg.drain("a").state == NodeState.DRAINING
        assert reg.drain("ghost") is None
        assert reg.undrain("ghost") is None

    def test_undrain_does_not_resurrect_the_dead(self):
        reg = make_registry(dead_after=0.05)
        reg.register("a", "http://127.0.0.1:9001")
        reg.drain("a")
        time.sleep(0.1)
        reg.reap()
        assert reg.undrain("a").state == NodeState.DEAD
        assert reg.route("key") is None


class TestIntrospection:
    def test_counts_and_stats_shape(self):
        reg = make_registry()
        reg.register("a", "http://127.0.0.1:9001")
        reg.register("b", "http://127.0.0.1:9002")
        reg.drain("b")
        counts = reg.counts()
        assert counts[NodeState.ACTIVE] == 1
        assert counts[NodeState.DRAINING] == 1
        stats = reg.stats_dict()
        assert stats["dead_after_seconds"] == reg.dead_after
        assert {n["node_id"] for n in stats["nodes"]} == {"a", "b"}
        one = stats["nodes"][0]
        assert {"node_id", "url", "state", "heartbeats",
                "heartbeat_age_seconds", "deaths"} <= set(one)

    def test_route_avoiding_skips_owner(self):
        reg = make_registry()
        reg.register("a", "http://127.0.0.1:9001")
        reg.register("b", "http://127.0.0.1:9002")
        owner = reg.route("key").node_id
        other = reg.route_avoiding("key", {owner}).node_id
        assert other != owner
        assert reg.route_avoiding("key", {"a", "b"}) is None
