"""Stitched span trees across the gateway/node boundary, over real HTTP.

The gateway owns the trace root (``gateway_job`` → ``route``); the node
it routes to records its own half (``job`` → queue/run/stage spans)
under the *same* trace id, continued via the ``traceparent`` header the
gateway injects.  ``GET /trace/<gid>`` on the gateway fetches the owning
node's spans live and returns one deduplicated tree — these tests pin
that contract, plus sampling propagation across the hop.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.gateway import GatewayServer
from repro.obs.trace import TraceContext
from repro.serve import ServiceClient, ServiceError
from repro.serve.server import ServiceServer


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.02,
               message: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {message}"
        time.sleep(interval)


def make_field(seed: int = 0, size: int = 512) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=size).astype(np.float32).cumsum()


def _cluster(gw_kwargs=None, node_kwargs=None, n_nodes=2):
    gw = GatewayServer(port=0, heartbeat_interval=0.1, dead_after=1.0,
                       check_interval=0.05, **(gw_kwargs or {}))
    gw.start()
    nodes = [
        ServiceServer(port=0, workers=2, executor="thread", cache=False,
                      register=gw.url, node_id=f"n{i}",
                      **(node_kwargs or {})).start()
        for i in range(n_nodes)
    ]
    wait_until(lambda: gw.router.registry.counts()["active"] == n_nodes,
               message="nodes registered")
    return gw, nodes


def _teardown(gw, nodes):
    for n in nodes:
        n.shutdown()
    gw.shutdown()


@pytest.fixture
def cluster():
    gw, nodes = _cluster()
    try:
        yield gw, nodes
    finally:
        _teardown(gw, nodes)


class TestStitchedTree:
    def test_one_trace_spans_both_tiers(self, cluster):
        gw, nodes = cluster
        client = ServiceClient(gw.url)
        ticket = client.submit_array(make_field(0), kind="tune",
                                     target_ratio=4.0)
        client.result(ticket["job_id"], timeout=60.0)
        trace = client.trace(ticket["job_id"])

        assert trace["trace_id"] == ticket["trace_id"]
        assert trace["job_id"] == ticket["job_id"]
        assert trace["complete"] is True
        spans = trace["spans"]
        assert all(s["trace_id"] == trace["trace_id"] for s in spans)
        # No span appears twice even though the gateway merges two stores.
        ids = [s["span_id"] for s in spans]
        assert len(ids) == len(set(ids))

        named = {s["name"]: s for s in spans}
        for required in ("gateway_job", "route", "job", "queue_wait",
                         "run", "executor_dispatch", "search",
                         "search_iteration"):
            assert required in named, f"missing {required!r}: {sorted(named)}"

        # Tier attribution: gateway spans vs node spans, one tree.
        tiers = {s["name"]: s.get("node_id") for s in spans}
        assert tiers["gateway_job"] == "gateway"
        assert tiers["route"] == "gateway"
        assert tiers["job"] == ticket["node"]

        # Parentage across the HTTP hop: route is the gateway root's
        # child, and the node's job root is route's child — the
        # traceparent header carried route's span id across.
        assert named["route"]["parent_id"] == named["gateway_job"]["span_id"]
        assert named["job"]["parent_id"] == named["route"]["span_id"]
        assert named["route"]["attrs"]["node"] == ticket["node"]

    def test_gateway_ticket_and_status_carry_trace_id(self, cluster):
        gw, nodes = cluster
        client = ServiceClient(gw.url)
        ticket = client.submit_array(make_field(1), kind="tune",
                                     target_ratio=4.0)
        assert len(ticket["trace_id"]) == 32
        client.result(ticket["job_id"], timeout=60.0)
        assert client.status(ticket["job_id"])["trace_id"] == \
            ticket["trace_id"]

    def test_caller_traceparent_continues_through_both_tiers(self, cluster):
        gw, nodes = cluster
        ctx = TraceContext("ab" * 16, "cd" * 8, sampled=True)
        client = ServiceClient(gw.url)
        ticket = client.submit_array(make_field(2), kind="tune",
                                     target_ratio=4.0,
                                     traceparent=ctx.to_traceparent())
        client.result(ticket["job_id"], timeout=60.0)
        trace = client.trace(ticket["job_id"])
        assert trace["trace_id"] == ctx.trace_id
        named = {s["name"]: s for s in trace["spans"]}
        # The caller's span is the gateway root's parent; the node's job
        # root is two hops below — all one trace.
        assert named["gateway_job"]["parent_id"] == ctx.span_id
        assert named["job"]["trace_id"] == ctx.trace_id

    def test_trace_by_raw_trace_id(self, cluster):
        gw, nodes = cluster
        client = ServiceClient(gw.url)
        ticket = client.submit_array(make_field(3), kind="tune",
                                     target_ratio=4.0)
        client.result(ticket["job_id"], timeout=60.0)
        by_trace = client.trace(ticket["trace_id"])
        assert by_trace["job_id"] == ticket["job_id"]

    def test_gateway_stats_expose_trace_exemplars(self, cluster):
        gw, nodes = cluster
        client = ServiceClient(gw.url)
        ticket = client.submit_array(make_field(4), kind="tune",
                                     target_ratio=4.0)
        client.result(ticket["job_id"], timeout=60.0)
        trace_stats = client.stats()["trace"]
        assert trace_stats["sampled"] >= 1
        assert ticket["job_id"] in \
            [e["job_id"] for e in trace_stats["exemplars"]]

    def test_gateway_health_reports_version(self, cluster):
        from repro import __version__

        gw, nodes = cluster
        assert ServiceClient(gw.url).health()["version"] == __version__


class TestSamplingAcrossTheHop:
    def test_sample_zero_gateway_suppresses_node_recording(self):
        # The gateway makes the head decision; sampled=0 must ride the
        # traceparent to the node so *neither* tier records — but the
        # job itself still completes.
        gw, nodes = _cluster(gw_kwargs={"trace_sample": 0.0})
        try:
            client = ServiceClient(gw.url)
            ticket = client.submit_array(make_field(5), kind="tune",
                                         target_ratio=4.0)
            result = client.result(ticket["job_id"], timeout=60.0)
            assert result["kind"] == "tune"
            with pytest.raises(ServiceError) as exc:
                client.trace(ticket["job_id"])
            assert exc.value.status == 404
            for node in nodes:
                assert len(node.scheduler.tracer.store) == 0
        finally:
            _teardown(gw, nodes)
