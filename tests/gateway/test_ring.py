"""Property-based tests for the consistent-hash ring.

The two guarantees the gateway leans on:

* **balance** — with virtual nodes, each node's share of a large key
  population stays within a tolerance band of the fair share, so no
  shard becomes a hotspot just from hashing;
* **stability** — adding or removing one node moves only the keys that
  *must* move (the slice the node owns), far below a full reshuffle.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gateway import HashRing

_SETTINGS = dict(max_examples=30, deadline=None)

node_names = st.lists(
    st.text(alphabet="abcdefghij0123456789-", min_size=1, max_size=12),
    min_size=2, max_size=8, unique=True,
)


def _keys(n: int) -> list[str]:
    # Deterministic key population shaped like real coalesce keys.
    return [f"tune|sz|ratio={i % 97}|shape=({i},)|digest{i:05d}" for i in range(n)]


class TestLookupBasics:
    def test_empty_ring_routes_nothing(self):
        ring = HashRing()
        assert ring.lookup("anything") is None
        assert len(ring) == 0

    def test_single_node_owns_everything(self):
        ring = HashRing()
        ring.add("only")
        assert all(ring.lookup(k) == "only" for k in _keys(100))

    @given(nodes=node_names)
    @settings(**_SETTINGS)
    def test_lookup_is_deterministic(self, nodes):
        ring = HashRing()
        for n in nodes:
            ring.add(n)
        for key in _keys(50):
            assert ring.lookup(key) == ring.lookup(key)

    @given(nodes=node_names)
    @settings(**_SETTINGS)
    def test_lookup_lands_on_a_member(self, nodes):
        ring = HashRing()
        for n in nodes:
            ring.add(n)
        for key in _keys(50):
            assert ring.lookup(key) in nodes

    @given(nodes=node_names)
    @settings(**_SETTINGS)
    def test_exclude_all_routes_nothing(self, nodes):
        ring = HashRing()
        for n in nodes:
            ring.add(n)
        assert ring.lookup("key", exclude=set(nodes)) is None

    @given(nodes=node_names)
    @settings(**_SETTINGS)
    def test_exclude_one_falls_through_to_another(self, nodes):
        ring = HashRing()
        for n in nodes:
            ring.add(n)
        for key in _keys(25):
            owner = ring.lookup(key)
            fallback = ring.lookup(key, exclude={owner})
            assert fallback != owner
            assert fallback in nodes

    def test_add_is_idempotent(self):
        ring = HashRing()
        ring.add("a")
        points = len(ring._points)
        ring.add("a")
        assert len(ring._points) == points

    def test_remove_unknown_is_noop(self):
        ring = HashRing()
        ring.add("a")
        ring.remove("ghost")
        assert "a" in ring


class TestDistribution:
    @given(nodes=node_names)
    @settings(**_SETTINGS)
    def test_shares_within_tolerance_of_fair(self, nodes):
        """No node's share strays past fair ± 60% with 64 virtual points.

        64 replicas is a balance/insert-cost compromise: shares land
        well inside this band in practice; the band is wide enough that
        the property is a law, not a flaky statistical test.
        """
        ring = HashRing()
        for n in nodes:
            ring.add(n)
        keys = _keys(3000)
        counts = Counter(ring.lookup(k) for k in keys)
        fair = len(keys) / len(nodes)
        for node in nodes:
            assert counts[node] < fair * 1.6 + 1, (node, counts)
            # Every node must own *some* keys — a starved shard means
            # its virtual points collapsed onto a neighbour's arcs.
            assert counts[node] > fair * 0.4 - 1, (node, counts)


class TestStability:
    @given(nodes=node_names, joiner=st.text("xyz", min_size=1, max_size=8))
    @settings(**_SETTINGS)
    def test_join_moves_less_than_two_over_n(self, nodes, joiner):
        """A node joining an N-fleet re-homes < 2/N of all keys."""
        if joiner in nodes:
            joiner = joiner + "-new"
        ring = HashRing()
        for n in nodes:
            ring.add(n)
        keys = _keys(2000)
        before = {k: ring.lookup(k) for k in keys}
        ring.add(joiner)
        after = {k: ring.lookup(k) for k in keys}
        moved = sum(1 for k in keys if before[k] != after[k])
        n_after = len(nodes) + 1
        assert moved < len(keys) * 2 / n_after, (moved, n_after)
        # Every moved key moved *to the joiner* — consistent hashing's
        # defining property: nobody else's keys get shuffled around.
        for k in keys:
            if before[k] != after[k]:
                assert after[k] == joiner

    @given(nodes=node_names)
    @settings(**_SETTINGS)
    def test_leave_moves_only_the_leavers_keys(self, nodes):
        ring = HashRing()
        for n in nodes:
            ring.add(n)
        keys = _keys(2000)
        before = {k: ring.lookup(k) for k in keys}
        leaver = nodes[0]
        ring.remove(leaver)
        after = {k: ring.lookup(k) for k in keys}
        for k in keys:
            if before[k] == leaver:
                assert after[k] != leaver
            else:
                assert after[k] == before[k], "an unaffected key moved"

    @given(nodes=node_names)
    @settings(**_SETTINGS)
    def test_leave_then_rejoin_restores_routing(self, nodes):
        ring = HashRing()
        for n in nodes:
            ring.add(n)
        keys = _keys(500)
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(nodes[0])
        ring.add(nodes[0])
        assert {k: ring.lookup(k) for k in keys} == before
