"""Fault-injection e2e: kill, hang, and slow a worker node mid-job.

The ISSUE's headline contract, verified end to end with real OS
processes: a 3-node fleet loses one node **while it is executing a
job**, and

* zero jobs are lost — every submitted job completes,
* the recomputed results are **bit-identical** to a serial run in this
  test process (results are pure functions of the spec),
* the failover is visible in the gateway's ``/metrics``
  (``repro_gateway_requeued_total``, ``repro_gateway_node_failures_total``).

Plus the two liveness edge cases: a *hung* node (SIGSTOP — socket open,
heartbeats silent) must fail over even though TCP still connects, and a
merely *slow* node (a hang shorter than ``dead_after``) must NOT.
"""

from __future__ import annotations

import numpy as np

from repro.api.execute import execute
from repro.api.plan import plan
from repro.api.request import CompressionRequest

from faults import FaultyCluster, wait_until


def make_inputs(tmp_path, sizes):
    """Input arrays on disk + their serial-run reference .frz bytes."""
    specs = []
    for i, size in enumerate(sizes):
        rng = np.random.default_rng(100 + i)
        data = rng.normal(size=size).astype(np.float32).cumsum()
        src = tmp_path / f"in{i}.npy"
        np.save(src, data)
        ref = tmp_path / f"ref{i}.frz"
        execute(plan(CompressionRequest(
            kind="compress", input=str(src), output=str(ref),
            error_bound=1e-3)))
        specs.append((src, ref.read_bytes()))
    return specs


def submit_compress(client, src, out):
    return client.submit(kind="compress", input=str(src), output=str(out),
                         error_bound=1e-3)


class TestKillMidJob:
    def test_sigkill_loses_zero_jobs_and_results_bit_match(self, tmp_path):
        # Job 0 is big (seconds of work) so the kill provably lands
        # mid-execution; the rest pad the fleet so survivors have load.
        specs = make_inputs(tmp_path, [2**18, 2**16, 2**16, 2**16])
        with FaultyCluster(n_nodes=3, dead_after=1.0) as cluster:
            cluster.wait_fleet(3)
            client = cluster.client(timeout=15.0)
            tickets = [
                submit_compress(client, src, tmp_path / f"out{i}.frz")
                for i, (src, _) in enumerate(specs)
            ]
            victim = tickets[0]["node"]

            # Only kill once the victim is demonstrably executing.
            wait_until(lambda: cluster.running_on(victim) >= 1,
                       message="victim mid-job")
            assert cluster.owed_by(victim), "victim owes un-acked work"
            cluster.kill(victim)

            # Zero jobs lost: every job completes despite the crash.
            for i, ticket in enumerate(tickets):
                result = client.result(ticket["job_id"], timeout=120.0)
                assert result["kind"] == "compress"
                produced = (tmp_path / f"out{i}.frz").read_bytes()
                assert produced == specs[i][1], (
                    f"job {i} result differs from serial run")

            # The killed node's job finished somewhere else.
            final = client.status(tickets[0]["job_id"])
            assert final["state"] == "done"
            assert final["node"] != victim
            assert final["failovers"] >= 1

            # The failover showed up in the control plane.
            assert cluster.counts()["dead"] == 1
            assert cluster.metric_value("repro_gateway_node_failures_total") >= 1
            assert cluster.metric_value("repro_gateway_requeued_total") >= 1
            assert cluster.metric_value("repro_gateway_completed_total") == len(specs)

    def test_post_kill_submits_route_around_the_corpse(self, tmp_path):
        specs = make_inputs(tmp_path, [2**14])
        with FaultyCluster(n_nodes=2, dead_after=1.0) as cluster:
            cluster.wait_fleet(2)
            client = cluster.client(timeout=15.0)
            cluster.kill("n0")
            wait_until(lambda: cluster.counts()["dead"] == 1,
                       message="reaper notices the kill")
            ticket = submit_compress(client, specs[0][0], tmp_path / "out.frz")
            assert ticket["node"] == "n1"
            result = client.result(ticket["job_id"], timeout=60.0)
            assert (tmp_path / "out.frz").read_bytes() == specs[0][1]
            assert result["kind"] == "compress"


class TestHangMidJob:
    def test_hung_node_fails_over_despite_open_socket(self, tmp_path):
        specs = make_inputs(tmp_path, [2**17])
        with FaultyCluster(n_nodes=3, dead_after=1.0) as cluster:
            cluster.wait_fleet(3)
            client = cluster.client(timeout=15.0)
            ticket = submit_compress(client, specs[0][0], tmp_path / "out.frz")
            victim = ticket["node"]

            cluster.hang(victim)
            # The trap this harness exists for: the socket still accepts,
            # so TCP reachability would declare the node healthy.
            assert cluster.socket_accepts(victim)

            result = client.result(ticket["job_id"], timeout=120.0)
            assert result["kind"] == "compress"
            assert (tmp_path / "out.frz").read_bytes() == specs[0][1]
            final = client.status(ticket["job_id"])
            assert final["node"] != victim
            assert cluster.counts()["dead"] == 1
            assert cluster.metric_value("repro_gateway_requeued_total") >= 1

            # SIGCONT: heartbeats resume, the node is resurrected, and
            # it takes new work again.
            cluster.unhang(victim)
            wait_until(lambda: cluster.counts()["active"] == 3,
                       message="hung node resurrects")

    def test_resurrected_node_serves_again(self, tmp_path):
        specs = make_inputs(tmp_path, [2**14])
        with FaultyCluster(n_nodes=1, dead_after=1.0) as cluster:
            cluster.wait_fleet(1)
            client = cluster.client(timeout=15.0)
            cluster.hang("n0")
            wait_until(lambda: cluster.counts()["dead"] == 1,
                       message="hang detected")
            cluster.unhang("n0")
            wait_until(lambda: cluster.counts()["active"] == 1,
                       message="resurrection")
            ticket = submit_compress(client, specs[0][0], tmp_path / "out.frz")
            client.result(ticket["job_id"], timeout=60.0)
            assert (tmp_path / "out.frz").read_bytes() == specs[0][1]


class TestSlowNode:
    def test_brief_stall_does_not_trigger_failover(self, tmp_path):
        specs = make_inputs(tmp_path, [2**16])
        # dead_after is generous here: the stall must stay a *slow node*.
        with FaultyCluster(n_nodes=3, heartbeat_interval=0.2,
                           dead_after=5.0) as cluster:
            cluster.wait_fleet(3)
            client = cluster.client(timeout=15.0)
            ticket = submit_compress(client, specs[0][0], tmp_path / "out.frz")
            victim = ticket["node"]

            import time
            cluster.hang(victim)
            time.sleep(1.0)  # well under dead_after: a GC-pause analogue
            cluster.unhang(victim)

            result = client.result(ticket["job_id"], timeout=120.0)
            assert result["kind"] == "compress"
            assert (tmp_path / "out.frz").read_bytes() == specs[0][1]
            final = client.status(ticket["job_id"])
            # No failover: the job finished where it was routed.
            assert final["node"] == victim
            assert final["failovers"] == 0
            assert cluster.gateway_stat("node_failures") == 0
            assert cluster.gateway_stat("requeued") == 0
            assert cluster.counts()["active"] == 3
