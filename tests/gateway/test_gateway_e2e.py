"""End-to-end gateway tests over real HTTP with real node agents.

Everything here exercises the full wire path: ``ServiceClient`` →
gateway HTTP server → router → node HTTP server → scheduler, with the
node-side :class:`~repro.serve.agent.NodeAgent` doing registration,
heartbeats and result acks exactly as ``repro serve --register`` would.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.gateway import GatewayServer
from repro.serve import JobSpec, ServiceClient
from repro.serve.server import ServiceServer


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.02,
               message: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {message}"
        time.sleep(interval)


def make_field(seed: int = 0, size: int = 512) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=size).astype(np.float32).cumsum()


@pytest.fixture
def cluster():
    """A gateway fronting two agent-registered thread-backend nodes."""
    with GatewayServer(port=0, heartbeat_interval=0.1, dead_after=1.0,
                       check_interval=0.05) as gw:
        nodes = [
            ServiceServer(port=0, workers=2, executor="thread", cache=False,
                          register=gw.url, node_id=f"n{i}").start()
            for i in range(2)
        ]
        try:
            wait_until(lambda: gw.router.registry.counts()["active"] == 2,
                       message="both nodes registered")
            yield gw, nodes
        finally:
            for n in nodes:
                n.shutdown()


class TestHappyPath:
    def test_submit_and_result_through_the_gateway(self, cluster):
        gw, nodes = cluster
        client = ServiceClient(gw.url)
        ticket = client.submit_array(make_field(0), kind="tune", target_ratio=4.0)
        assert ticket["job_id"].startswith("g")
        assert ticket["node"] in ("n0", "n1")
        result = client.result(ticket["job_id"], timeout=60.0)
        assert result["kind"] == "tune"
        assert result["ratio"] > 1.0

    def test_gateway_speaks_the_service_client_protocol(self, cluster):
        gw, nodes = cluster
        client = ServiceClient(gw.url)
        health = client.health()
        assert health["status"] == "ok"
        assert health["nodes_active"] == 2
        stats = client.stats()
        assert {"jobs", "fleet", "inflight"} <= set(stats)
        assert "repro_gateway_nodes_active 2" in client.metrics_text()

    def test_status_and_result_lifecycle(self, cluster):
        gw, nodes = cluster
        client = ServiceClient(gw.url)
        ticket = client.submit_array(make_field(1), kind="tune", target_ratio=4.0)
        gid = ticket["job_id"]
        status = client.status(gid)
        assert status["job_id"] == gid
        assert status["state"] in ("routed", "pending", "done")
        client.result(gid, timeout=60.0)
        assert client.status(gid)["state"] == "done"

    def test_identical_requests_route_to_one_node_and_hit_cache(self, cluster):
        gw, nodes = cluster
        client = ServiceClient(gw.url)
        t1 = client.submit_array(make_field(2), kind="tune", target_ratio=4.0)
        r1 = client.result(t1["job_id"], timeout=60.0)
        t2 = client.submit_array(make_field(2), kind="tune", target_ratio=4.0)
        r2 = client.result(t2["job_id"], timeout=60.0)
        assert t1["node"] == t2["node"]
        assert r1["error_bound"] == r2["error_bound"]

    def test_node_stats_grow_a_shard_section(self, cluster):
        gw, nodes = cluster
        wait_until(lambda: ServiceClient(nodes[0].url).stats().get("shard", {})
                   .get("registered"), message="agent registered")
        shard = ServiceClient(nodes[0].url).stats()["shard"]
        assert shard["node_id"] == "n0"
        assert shard["gateway"] == gw.url
        assert shard["state"] == "active"

    def test_node_metrics_export_fleet_gauges(self, cluster):
        gw, nodes = cluster
        wait_until(lambda: "repro_node_registered 1"
                   in ServiceClient(nodes[0].url).metrics_text(),
                   message="node_registered gauge")
        text = ServiceClient(nodes[0].url).metrics_text()
        assert "repro_node_draining 0" in text
        assert "repro_node_heartbeats_total" in text


class TestProtocolEdges:
    def test_unknown_endpoints_404(self, cluster):
        gw, _ = cluster
        client = ServiceClient(gw.url)
        assert client._request("GET", "/nope")[0] == 404
        assert client._request("POST", "/nope", {})[0] == 404

    def test_invalid_submit_400(self, cluster):
        gw, _ = cluster
        client = ServiceClient(gw.url)
        status, body = client._request("POST", "/submit", {"kind": "bogus"})
        assert status == 400 and "error" in body

    def test_unknown_job_404(self, cluster):
        gw, _ = cluster
        client = ServiceClient(gw.url)
        assert client._request("GET", "/status/g999999")[0] == 404
        assert client._request("GET", "/result/g999999")[0] == 404

    def test_no_capacity_is_503_with_retry_after(self):
        with GatewayServer(port=0) as gw:
            client = ServiceClient(gw.url)
            status, body = client._request(
                "POST", "/submit",
                {"kind": "tune", "target_ratio": 4.0,
                 "data_b64": JobSpec.encode_array(make_field(3))})
            assert status == 503
            assert body["retry_after"] == 1.0

    def test_heartbeat_unknown_node_404(self, cluster):
        gw, _ = cluster
        client = ServiceClient(gw.url)
        status, body = client._request("POST", "/heartbeat/stranger",
                                       {"finished": []})
        assert status == 404
        assert "re-register" in body["error"]

    def test_drain_unknown_node_404(self, cluster):
        gw, _ = cluster
        client = ServiceClient(gw.url)
        assert client._request("POST", "/admin/drain/ghost", {})[0] == 404


@pytest.mark.parametrize("executor", ["thread", "process"])
class TestDrainSemantics:
    """The satellite contract: drain finishes in-flight work, routes no
    new work to the node, and both sides report the transition — on both
    execution backends."""

    def test_drain_lifecycle(self, executor):
        with GatewayServer(port=0, heartbeat_interval=0.1, dead_after=2.0,
                           check_interval=0.05) as gw:
            nodes = [
                ServiceServer(port=0, workers=1, executor=executor, cache=False,
                              register=gw.url, node_id=f"n{i}").start()
                for i in range(2)
            ]
            try:
                wait_until(lambda: gw.router.registry.counts()["active"] == 2,
                           message="registration")
                client = ServiceClient(gw.url)

                # Park a job on whichever node owns this key.
                for n in nodes:
                    n.scheduler.pause()
                ticket = client.submit_array(make_field(10), kind="tune",
                                             target_ratio=4.0)
                victim = ticket["node"]
                survivor = "n1" if victim == "n0" else "n0"

                # Drain the owner over the admin API.
                status, body = client._request(
                    "POST", f"/admin/drain/{victim}", {})
                assert status == 200 and body["state"] == "draining"

                # Both sides observe the transition.
                wait_until(lambda: ServiceClient(
                    next(n for n in nodes
                         if n.agent.node_id == victim).url).stats()
                    ["shard"]["state"] == "draining",
                    message="node sees draining via heartbeat")
                assert "repro_node_draining 1" in ServiceClient(
                    next(n for n in nodes
                         if n.agent.node_id == victim).url).metrics_text()
                assert "repro_gateway_nodes_draining 1" in client.metrics_text()
                assert client.stats()["fleet"]["counts"]["draining"] == 1

                # New identical work routes elsewhere now.
                t2 = client.submit_array(make_field(10), kind="tune",
                                         target_ratio=4.0)
                assert t2["node"] == survivor

                # The in-flight job still finishes on the draining node.
                for n in nodes:
                    n.scheduler.resume()
                result = client.result(ticket["job_id"], timeout=120.0)
                assert result["kind"] == "tune"
                assert client.status(ticket["job_id"])["node"] == victim

                # Undrain restores routing.
                status, body = client._request(
                    "POST", f"/admin/undrain/{victim}", {})
                assert status == 200 and body["state"] == "active"
                wait_until(lambda: ServiceClient(
                    next(n for n in nodes
                         if n.agent.node_id == victim).url).stats()
                    ["shard"]["state"] == "active",
                    message="node sees undrain")
                t3 = client.submit_array(make_field(10), kind="tune",
                                         target_ratio=4.0)
                assert t3["node"] == victim  # sticky key returns home
            finally:
                for n in nodes:
                    n.shutdown()


class TestAgentResilience:
    def test_agent_survives_gateway_restart(self):
        """A gateway that loses its registry answers 404; agents re-register."""
        gw = GatewayServer(port=0, heartbeat_interval=0.1).start()
        port = gw.port
        node = ServiceServer(port=0, workers=1, executor="thread", cache=False,
                             register=gw.url, node_id="n0").start()
        try:
            wait_until(lambda: gw.router.registry.counts()["active"] == 1,
                       message="initial registration")
            gw.shutdown()
            # Same port, fresh registry — the old gateway's state is gone.
            gw = GatewayServer(port=port, heartbeat_interval=0.1).start()
            wait_until(lambda: gw.router.registry.counts()["active"] == 1,
                       timeout=15.0, message="re-registration after restart")
            client = ServiceClient(gw.url)
            ticket = client.submit_array(make_field(20), kind="tune",
                                         target_ratio=4.0)
            assert client.result(ticket["job_id"], timeout=60.0)["kind"] == "tune"
        finally:
            node.shutdown()
            try:
                gw.shutdown()
            except Exception:
                pass

    def test_clean_node_shutdown_unregisters(self):
        with GatewayServer(port=0, heartbeat_interval=0.1) as gw:
            node = ServiceServer(port=0, workers=1, executor="thread",
                                 cache=False, register=gw.url,
                                 node_id="n0").start()
            wait_until(lambda: gw.router.registry.counts()["active"] == 1,
                       message="registration")
            node.shutdown()
            assert gw.router.registry.counts()["left"] == 1
