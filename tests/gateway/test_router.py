"""Router tests against real in-process worker nodes.

Heartbeats are driven *manually* (``router.node_heartbeat``) and the
monitor tick is called directly (``router.check_nodes``), so every
liveness/failover scenario runs deterministically — no background agent,
no wall-clock margins beyond tiny ``dead_after`` windows.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.gateway import NoCapacityError, NodeState, Router
from repro.serve import BackpressureError, JobSpec, ServiceClient
from repro.serve.server import ServiceServer


@pytest.fixture
def nodes():
    """Two thread-backend nodes, no agents — the tests speak for them."""
    servers = [
        ServiceServer(port=0, workers=2, executor="thread", cache=False).start()
        for _ in range(2)
    ]
    yield servers
    for s in servers:
        s.shutdown()


@pytest.fixture
def router(nodes):
    r = Router(heartbeat_interval=0.1, dead_after=0.4, metrics=True)
    for i, server in enumerate(nodes):
        r.register_node(f"n{i}", server.url)
    yield r
    r.stop()


def tune_body(seed: int = 0, ratio: float = 4.0) -> dict:
    rng = np.random.default_rng(seed)
    data = rng.normal(size=256).astype(np.float32).cumsum()
    return {"kind": "tune", "target_ratio": ratio,
            "data_b64": JobSpec.encode_array(data)}


def heartbeat_all(router: Router, nodes, finished=()):
    for i in range(len(nodes)):
        router.node_heartbeat(f"n{i}", finished=list(finished))


def pump_until_done(router: Router, nodes, job, timeout: float = 30.0,
                    only: set | None = None):
    """Heartbeat-with-acks until the gateway has the job finished.

    ``only`` restricts which nodes check in — a heartbeat from a reaped
    node would resurrect it, which failover tests must not do by accident.
    """
    deadline = time.monotonic() + timeout
    while not job.finished:
        assert time.monotonic() < deadline, f"job stuck in {job.state}"
        for i, server in enumerate(nodes):
            if only is not None and f"n{i}" not in only:
                continue
            done = [j.id for j in server.scheduler.jobs() if j.finished]
            router.node_heartbeat(f"n{i}", finished=done)
        time.sleep(0.02)


class TestRouting:
    def test_submit_routes_and_completes(self, router, nodes):
        job, ticket = router.submit(tune_body())
        assert ticket["job_id"] == job.id
        assert ticket["node"] in ("n0", "n1")
        pump_until_done(router, nodes, job)
        assert job.state == "done"
        assert job.result["kind"] == "tune"
        assert router.stats.completed == 1

    def test_identical_specs_land_on_the_same_node(self, router, nodes):
        first, _ = router.submit(tune_body(seed=1))
        owners = {first.node_id}
        for _ in range(4):
            job, _ = router.submit(tune_body(seed=1))
            owners.add(job.node_id)
        assert owners == {first.node_id}

    def test_concurrent_identical_specs_coalesce_on_the_shard(self, router, nodes):
        for server in nodes:
            server.scheduler.pause()  # park jobs so the second overlaps
        try:
            primary, _ = router.submit(tune_body(seed=2))
            follower, ticket = router.submit(tune_body(seed=2))
            assert follower.node_id == primary.node_id
            assert ticket["coalesced_into"] == primary.id
        finally:
            for server in nodes:
                server.scheduler.resume()
        pump_until_done(router, nodes, primary)
        pump_until_done(router, nodes, follower)
        assert primary.result == follower.result

    def test_no_nodes_is_no_capacity(self):
        router = Router(metrics=False)
        with pytest.raises(NoCapacityError):
            router.submit(tune_body())
        assert router.stats.no_capacity == 1
        assert router.stats.submitted == 0  # rejected submits don't count

    def test_invalid_spec_is_value_error(self, router):
        with pytest.raises(ValueError):
            router.submit({"kind": "tune"})  # no input, no target

    def test_submit_reroutes_around_refused_connection(self, nodes):
        router = Router(metrics=False)
        # A registered node that refuses TCP: nothing listens there.
        router.register_node("bogus", "http://127.0.0.1:9")
        router.register_node("real", nodes[0].url)
        for seed in range(6):  # some keys will hash onto bogus first
            router.submit(tune_body(seed=seed))
        assert all(j.node_id == "real" for j in router._jobs.values())
        if router.stats.reroutes == 0:
            pytest.skip("no key happened to own the bogus node first")

    def test_backpressure_propagates_to_caller(self, nodes):
        tiny = ServiceServer(port=0, workers=1, executor="thread",
                             queue_size=1, cache=False).start()
        try:
            tiny.scheduler.pause()
            router = Router(metrics=False)
            router.register_node("tiny", tiny.url)
            router.submit(tune_body(seed=10))  # paused: occupies the 1 slot
            with pytest.raises(BackpressureError):
                router.submit(tune_body(seed=11))
            assert router.stats.submitted == 1
        finally:
            tiny.scheduler.resume()
            tiny.shutdown()


class TestAckProtocol:
    def test_heartbeat_ack_fetches_and_caches_result(self, router, nodes):
        job, _ = router.submit(tune_body(seed=3))
        node_idx = int(job.node_id[1:])
        client = ServiceClient(nodes[node_idx].url)
        client.result(job.node_job_id, timeout=30.0)  # wait node-side
        answer = router.node_heartbeat(
            job.node_id, finished=[job.node_job_id])
        assert job.node_job_id in answer["acked"]
        assert job.state == "done"
        # The node can now forget the job; the gateway serves its cache.
        code, body = router.job_result(job.id)
        assert code == 200 and body["state"] == "done"

    def test_unknown_finished_ids_are_acked_away(self, router):
        answer = router.node_heartbeat("n0", finished=["jb999999"])
        assert answer["acked"] == ["jb999999"]

    def test_client_poll_also_finishes_the_job(self, router, nodes):
        job, _ = router.submit(tune_body(seed=4))
        deadline = time.monotonic() + 30
        while True:
            code, body = router.job_result(job.id)
            if code == 200:
                break
            assert time.monotonic() < deadline
            time.sleep(0.02)
        assert body["state"] == "done"
        assert job.state == "done"

    def test_job_status_includes_live_node_view(self, router, nodes):
        for server in nodes:
            server.scheduler.pause()
        try:
            job, _ = router.submit(tune_body(seed=5))
            payload = router.job_status(job.id)
            assert payload["state"] == "routed"
            assert payload["node_status"]["job_id"] == job.node_job_id
        finally:
            for server in nodes:
                server.scheduler.resume()
        assert router.job_status("g999999") is None


class TestFailover:
    def test_dead_node_jobs_requeue_and_complete(self, router, nodes):
        for server in nodes:
            server.scheduler.pause()  # hold jobs so death strikes mid-job
        job, _ = router.submit(tune_body(seed=6))
        victim = job.node_id
        survivor = "n1" if victim == "n0" else "n0"
        time.sleep(0.5)  # > dead_after with no heartbeats at all
        router.node_heartbeat(survivor)  # only the survivor checks in
        for server in nodes:
            server.scheduler.resume()
        dead = router.check_nodes()
        assert victim in dead
        assert router.stats.node_failures == 1
        assert router.stats.requeued == 1
        assert job.failovers == 1
        assert job.node_id == survivor
        pump_until_done(router, nodes, job, only={survivor})
        assert job.state == "done"
        assert router.registry.get(victim).state == NodeState.DEAD

    def test_acked_jobs_do_not_requeue_on_death(self, router, nodes):
        job, _ = router.submit(tune_body(seed=7))
        pump_until_done(router, nodes, job)
        result_before = job.result
        time.sleep(0.5)
        router.check_nodes()  # everyone is dead now
        assert router.stats.requeued == 0
        assert job.result is result_before

    def test_retry_budget_exhaustion_fails_the_job(self, nodes):
        router = Router(dead_after=0.1, metrics=False)
        router.register_node("n0", nodes[0].url)
        nodes[0].scheduler.pause()
        try:
            body = dict(tune_body(seed=8), max_retries=0)
            job, _ = router.submit(body)
            time.sleep(0.2)
            router.check_nodes()
        finally:
            nodes[0].scheduler.resume()
        assert job.state == "failed"
        assert "retry budget exhausted" in job.error
        assert job.failovers == 0

    def test_no_survivor_keeps_job_pending_until_capacity_returns(self, nodes):
        router = Router(dead_after=0.1, metrics=False)
        router.register_node("n0", nodes[0].url)
        nodes[0].scheduler.pause()
        job, _ = router.submit(tune_body(seed=9))
        time.sleep(0.2)
        router.check_nodes()
        assert job.state == "pending"  # requeued, nowhere to go — not failed
        code, _ = router.job_result(job.id)
        assert code == 202
        # Capacity returns: the node re-registers and the next tick re-homes.
        nodes[0].scheduler.resume()
        router.register_node("n0", nodes[0].url)
        router.check_nodes()
        assert job.state == "routed"
        pump_until_done(router, nodes, job)
        assert job.state == "done"

    def test_unregister_requeues_owed_jobs(self, router, nodes):
        for server in nodes:
            server.scheduler.pause()
        job, _ = router.submit(tune_body(seed=12))
        victim = job.node_id
        router.unregister_node(victim)
        for server in nodes:
            server.scheduler.resume()
        assert job.failovers == 1
        assert job.node_id != victim
        pump_until_done(router, nodes, job)
        assert job.state == "done"

    def test_resurrected_node_routes_again(self, router, nodes):
        time.sleep(0.5)
        router.node_heartbeat("n1")
        assert "n0" in router.check_nodes()
        answer = router.node_heartbeat("n0")  # the partition heals
        assert answer["state"] == NodeState.ACTIVE
        job, _ = router.submit(tune_body(seed=13))
        assert job.node_id in ("n0", "n1")
        pump_until_done(router, nodes, job)
        assert job.state == "done"


class TestIntrospection:
    def test_stats_payload_shape(self, router, nodes):
        job, _ = router.submit(tune_body(seed=14))
        pump_until_done(router, nodes, job)
        payload = router.stats_payload()
        assert payload["jobs"]["submitted"] == 1
        assert payload["jobs"]["completed"] == 1
        assert payload["inflight"] == 0
        assert {n["node_id"] for n in payload["fleet"]["nodes"]} == {"n0", "n1"}
        assert payload["metrics"] is not None

    def test_metrics_exposition(self, router, nodes):
        job, _ = router.submit(tune_body(seed=15))
        pump_until_done(router, nodes, job)
        router.check_nodes()  # refresh the heartbeat-age gauges
        text = router.metrics_text()
        assert f'repro_gateway_routed_total{{node="{job.node_id}"}} 1' in text
        assert "repro_gateway_completed_total 1" in text
        assert "repro_gateway_nodes_active 2" in text
        assert 'repro_gateway_heartbeat_age_seconds{node="n0"}' in text

    def test_history_bound_evicts_finished_jobs(self, nodes):
        router = Router(metrics=False, history=2)
        router.register_node("n0", nodes[0].url)
        jobs = []
        for seed in range(4):
            job, _ = router.submit(tune_body(seed=20 + seed))
            code = 202
            deadline = time.monotonic() + 30
            while code == 202:
                assert time.monotonic() < deadline
                code, _ = router.job_result(job.id)
                time.sleep(0.02)
            jobs.append(job)
        assert router.get(jobs[0].id) is None  # evicted
        assert router.get(jobs[-1].id) is jobs[-1]
