"""Tests for the binary/grid search baselines."""

import numpy as np
import pytest

from repro.core.baselines import binary_search_ratio, grid_search_ratio
from repro.core.training import train
from repro.sz.compressor import SZCompressor


@pytest.fixture(scope="module")
def field():
    r = np.random.default_rng(41)
    x, y = np.meshgrid(np.linspace(0, 4, 48), np.linspace(0, 4, 40), indexing="ij")
    return (np.sin(x) * np.cos(y) + 0.01 * r.standard_normal(x.shape)).astype(np.float32)


class TestBinarySearch:
    def test_finds_feasible_target(self, field):
        res = binary_search_ratio(SZCompressor(), field, 10.0, tolerance=0.1)
        assert res.feasible
        assert res.within_tolerance

    def test_reports_evaluations(self, field):
        res = binary_search_ratio(SZCompressor(), field, 10.0, tolerance=0.1)
        assert res.evaluations >= 1

    def test_budget_respected(self, field):
        res = binary_search_ratio(
            SZCompressor(), field, 500.0, tolerance=0.01, max_calls=10
        )
        assert res.evaluations <= 10

    def test_binary_fails_on_nonmonotonic_staircase_fraz_succeeds(self):
        """The paper's Sec. V-B1 claim: binary search assumes monotonicity
        and can converge to the wrong plateau; FRaZ's global optimizer does
        not.  Demonstrated on a deterministic dipping-staircase ratio curve
        (the Fig. 3 shape)."""
        stair = _StaircaseCompressor()
        data = np.zeros(1000, np.float32)
        target, tol = 14.0, 0.05  # band [13.3, 14.7]; only e in [0.2, 0.4) hits
        binary = binary_search_ratio(stair, data, target, tolerance=tol,
                                     lower=1e-6, upper=1.0, max_calls=40)
        fraz = train(stair, data, target, tolerance=tol, lower=1e-6, upper=1.0,
                     regions=4, max_calls_per_region=16, seed=0)
        assert fraz.feasible
        assert not binary.feasible


class _StaircaseCompressor(SZCompressor):
    """Ratio curve with a dip: 10, *14*, 11, 12, 20 over five bound bands.

    The dip after the target band breaks bisection's monotonicity
    assumption: bisection of [1e-6, 1] only ever probes bands 2-4 (ratios
    11, 12, 20) and homes in on the 12/20 boundary, never reaching the
    target band [0.2, 0.4).
    """

    _LEVELS = (10.0, 14.0, 11.0, 12.0, 20.0)

    def compress(self, data):
        from repro.pressio.compressor import CompressedField

        band = min(int(self.error_bound / 0.2), 4) if self.error_bound > 0 else 0
        ratio = self._LEVELS[band]
        nbytes = max(1, round(max(data.nbytes, 1) / ratio))
        return CompressedField(payload=b"\x00" * nbytes, original_nbytes=data.nbytes)


class TestGridSearch:
    def test_finds_feasible_target(self, field):
        res = grid_search_ratio(SZCompressor(), field, 10.0, tolerance=0.1, points=48)
        assert res.feasible

    def test_linear_spacing_option(self, field):
        res = grid_search_ratio(
            SZCompressor(), field, 10.0, tolerance=0.2, points=32, log_spaced=False
        )
        assert res.evaluations <= 32

    def test_more_expensive_than_fraz(self, field):
        fraz = train(SZCompressor(), field, 10.0, tolerance=0.1, seed=0)
        grid = grid_search_ratio(SZCompressor(), field, 10.0, tolerance=0.1, points=64)
        assert fraz.evaluations < grid.evaluations or grid.feasible
