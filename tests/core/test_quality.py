"""Tests for quality-targeted tuning (paper future work #1)."""

import numpy as np
import pytest

from repro.core.quality import max_ratio_at_quality, tune_quality
from repro.metrics import psnr, ssim
from repro.sz.compressor import SZCompressor


@pytest.fixture(scope="module")
def field():
    r = np.random.default_rng(61)
    x, y = np.meshgrid(np.linspace(0, 4, 48), np.linspace(0, 4, 48), indexing="ij")
    return (np.sin(x) * np.cos(y) + 0.01 * r.standard_normal(x.shape)).astype(np.float32)


class TestTuneQuality:
    def test_ssim_target(self, field):
        res = tune_quality(SZCompressor(), field, target=0.95, metric="ssim",
                           tolerance=0.01, max_calls=20, seed=0)
        assert res.feasible
        # Re-running the returned bound reproduces the quality.
        c = SZCompressor(error_bound=res.error_bound)
        recon = c.decompress(c.compress(field))
        assert abs(ssim(field, recon) - res.quality) < 1e-12

    def test_psnr_target(self, field):
        res = tune_quality(SZCompressor(), field, target=60.0, metric="psnr",
                           tolerance=1.0, max_calls=20, seed=0)
        assert res.feasible
        c = SZCompressor(error_bound=res.error_bound)
        recon = c.decompress(c.compress(field))
        assert abs(psnr(field, recon) - 60.0) <= 1.0

    def test_reports_metric_and_target(self, field):
        res = tune_quality(SZCompressor(), field, target=0.9, metric="ssim",
                           max_calls=8, seed=0)
        assert res.metric == "ssim" and res.target == 0.9
        assert res.evaluations <= 8
        assert res.wall_seconds > 0

    def test_unknown_metric(self, field):
        with pytest.raises(KeyError):
            tune_quality(SZCompressor(), field, target=1.0, metric="vibes")

    def test_unreachable_target_infeasible(self, field):
        # SSIM > 1 is impossible; the search reports the closest it saw.
        res = tune_quality(SZCompressor(), field, target=1.5, metric="ssim",
                           tolerance=0.001, max_calls=6, seed=0)
        assert not res.feasible
        assert res.quality <= 1.0


class TestMaxRatioAtQuality:
    def test_floor_respected(self, field):
        floor = 0.97
        res = max_ratio_at_quality(SZCompressor(), field, min_quality=floor,
                                   metric="ssim", max_calls=20, seed=0)
        assert res.feasible
        assert res.quality >= floor
        # The returned point is the best ratio among floor-satisfying probes,
        # so it must beat a conservatively tiny bound's ratio.
        tiny = SZCompressor(error_bound=1e-7).compress(field).ratio
        assert res.ratio >= tiny

    def test_higher_floor_means_lower_ratio(self, field):
        loose = max_ratio_at_quality(SZCompressor(), field, min_quality=0.8,
                                     metric="ssim", max_calls=20, seed=0)
        strict = max_ratio_at_quality(SZCompressor(), field, min_quality=0.999,
                                      metric="ssim", max_calls=20, seed=0)
        assert loose.ratio >= strict.ratio

    def test_impossible_floor(self, field):
        res = max_ratio_at_quality(SZCompressor(), field, min_quality=2.0,
                                   metric="ssim", max_calls=6, seed=0)
        assert not res.feasible
