"""Tests for the analysis sweep helpers."""

import numpy as np
import pytest

from repro.analysis import (
    default_bound_sweep,
    feasible_ratio_range,
    rate_distortion_curve,
    ratio_curve,
)
from repro.sz.compressor import SZCompressor
from repro.zfp.compressor import ZFPCompressor


class TestDefaultSweep:
    def test_within_compressor_range(self, smooth2d):
        comp = SZCompressor()
        sweep = default_bound_sweep(comp, smooth2d, points=10)
        lo, hi = comp.default_bound_range(smooth2d)
        assert sweep.size == 10
        assert sweep[0] >= lo * 0.999
        assert sweep[-1] <= hi * 1.001

    def test_geometric_spacing(self, smooth2d):
        sweep = default_bound_sweep(SZCompressor(), smooth2d, points=8)
        log_gaps = np.diff(np.log(sweep))
        assert np.allclose(log_gaps, log_gaps[0])


class TestRatioCurve:
    def test_matches_direct_compression(self, smooth2d):
        comp = SZCompressor()
        bounds = np.array([1e-3, 1e-2])
        _, ratios = ratio_curve(comp, smooth2d, bounds)
        direct = comp.with_error_bound(1e-2).compress(smooth2d).ratio
        assert ratios[1] == pytest.approx(direct)

    def test_globally_increasing(self, smooth2d):
        bounds, ratios = ratio_curve(SZCompressor(), smooth2d)
        assert ratios[-1] > ratios[0]

    def test_default_bounds_used(self, smooth2d):
        bounds, ratios = ratio_curve(SZCompressor(), smooth2d)
        assert bounds.size == ratios.size == 24


class TestRateDistortion:
    def test_sorted_by_bit_rate(self, smooth2d):
        points = rate_distortion_curve(
            SZCompressor(), smooth2d, np.geomspace(1e-4, 1e-1, 6)
        )
        rates = [p.bit_rate for p in points]
        assert rates == sorted(rates)

    def test_monotone_quality_tradeoff(self, smooth2d):
        points = rate_distortion_curve(
            SZCompressor(), smooth2d, np.geomspace(1e-5, 1e-1, 8)
        )
        # Higher bit rate -> higher PSNR, at least end-to-end.
        assert points[-1].psnr > points[0].psnr
        assert points[-1].max_error < points[0].max_error

    def test_bound_respected_at_each_point(self, smooth2d):
        for p in rate_distortion_curve(
            ZFPCompressor(), smooth2d, np.geomspace(1e-3, 1e-1, 4)
        ):
            assert p.max_error <= p.error_bound

    def test_ssim_skippable(self, smooth2d):
        points = rate_distortion_curve(
            SZCompressor(), smooth2d, np.array([1e-2]), compute_ssim=False
        )
        assert np.isnan(points[0].ssim)


class TestFeasibleRange:
    def test_contains_known_achievable_ratio(self, smooth2d):
        comp = SZCompressor()
        lo, hi = feasible_ratio_range(comp, smooth2d)
        mid = comp.with_error_bound(1e-2).compress(smooth2d).ratio
        assert lo <= mid <= hi

    def test_range_ordering(self, smooth2d):
        lo, hi = feasible_ratio_range(SZCompressor(), smooth2d)
        assert lo < hi
        assert lo >= 0.5  # payload never more than ~2x the input

    def test_predicts_fig7_infeasibility(self, smooth2d):
        """Targets outside the range are exactly the slow Fig. 7 cases."""
        from repro.core.training import train

        lo, hi = feasible_ratio_range(SZCompressor(), smooth2d)
        below = max(lo * 0.3, 0.1)
        res = train(SZCompressor(), smooth2d, below, tolerance=0.05,
                    regions=3, max_calls_per_region=4, seed=0)
        assert not res.feasible
