"""Tests for the additional compressor modes (SZ REL, ZFP precision,
MGARD L2/MSE) — the modes the paper names in Secs. II/III but does not
evaluate."""

import numpy as np
import pytest

from repro.metrics import mse
from repro.mgard.compressor import MGARDCompressor
from repro.pressio import make_compressor
from repro.sz.compressor import SZCompressor
from repro.zfp.compressor import ZFPPrecisionCompressor


def _maxerr(a, b):
    return float(np.abs(a.astype(np.float64) - b.astype(np.float64)).max())


class TestSZRelativeMode:
    def test_bound_scales_with_value_range(self, smooth2d):
        rel = 1e-3
        c = SZCompressor(error_bound=rel, bound_mode="rel")
        recon = c.decompress(c.compress(smooth2d))
        span = float(smooth2d.max() - smooth2d.min())
        assert _maxerr(smooth2d, recon) <= rel * span

    def test_scaled_data_same_relative_fidelity(self, smooth2d):
        """REL's point: scaling the data scales the applied bound."""
        c = SZCompressor(error_bound=1e-3, bound_mode="rel")
        small = smooth2d
        big = (smooth2d * np.float32(1000.0)).astype(np.float32)
        err_small = _maxerr(small, c.decompress(c.compress(small)))
        err_big = _maxerr(big, c.decompress(c.compress(big)))
        assert err_big > err_small * 100  # bound grew with the range
        assert err_big <= 1e-3 * float(big.max() - big.min())

    def test_describe_and_mode(self):
        c = SZCompressor(bound_mode="rel")
        assert c.mode == "rel"
        assert c.describe() == "sz:rel"

    def test_default_range_is_unit_interval(self, smooth2d):
        lo, hi = SZCompressor(bound_mode="rel").default_bound_range(smooth2d)
        assert hi == 1.0

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            SZCompressor(bound_mode="percent")

    def test_constant_data_degrades_gracefully(self):
        data = np.full((12, 12), 3.0, np.float32)
        c = SZCompressor(error_bound=1e-3, bound_mode="rel")
        recon = c.decompress(c.compress(data))
        assert _maxerr(data, recon) <= 1e-3  # range treated as 1

    def test_registry_option(self):
        c = make_compressor("sz", bound_mode="rel", error_bound=0.01)
        assert isinstance(c, SZCompressor) and c.mode == "rel"


class TestZFPPrecisionMode:
    def test_more_planes_more_bytes_less_error(self, smooth3d):
        sizes, errs = [], []
        for planes in (4, 10, 20):
            c = ZFPPrecisionCompressor(error_bound=planes)
            f = c.compress(smooth3d)
            sizes.append(f.nbytes)
            errs.append(_maxerr(smooth3d, c.decompress(f)))
        assert sizes[0] < sizes[1] < sizes[2]
        assert errs[0] > errs[1] > errs[2]

    def test_precision_bounds_relative_error(self, smooth3d):
        # p kept planes => truncation at ~2**-p of the block magnitude.
        c = ZFPPrecisionCompressor(error_bound=20)
        recon = c.decompress(c.compress(smooth3d))
        span = float(np.abs(smooth3d).max())
        assert _maxerr(smooth3d, recon) <= span * 2.0**-10  # generous margin

    def test_describe_and_registry(self):
        c = make_compressor("zfp-prec", error_bound=16)
        assert c.describe() == "zfp-prec:prec"

    def test_default_bound_range(self, smooth3d):
        lo, hi = ZFPPrecisionCompressor().default_bound_range(smooth3d)
        assert lo == 1.0 and hi > 40

    def test_roundtrip_shapes(self, smooth1d, smooth2d):
        for data in (smooth1d, smooth2d):
            c = ZFPPrecisionCompressor(error_bound=16)
            recon = c.decompress(c.compress(data))
            assert recon.shape == data.shape


class TestMGARDL2Mode:
    @pytest.mark.parametrize("target_mse", [1e-6, 1e-4, 1e-2])
    def test_mse_bound_holds(self, smooth2d, target_mse):
        c = MGARDCompressor(error_bound=target_mse, norm="l2")
        recon = c.decompress(c.compress(smooth2d))
        assert mse(smooth2d, recon) <= target_mse

    def test_mse_mode_compresses_better_than_matching_inf(self, smooth2d):
        """Controlling the mean rather than the max lets the same MSE ship
        fewer bytes (no pointwise patching)."""
        target_mse = 1e-4
        l2 = MGARDCompressor(error_bound=target_mse, norm="l2")
        f_l2 = l2.compress(smooth2d)
        achieved = mse(smooth2d, l2.decompress(f_l2))
        # An inf bound achieving the same MSE must be <= sqrt(target), i.e.
        # much tighter pointwise; compare payloads at equal achieved MSE.
        inf = MGARDCompressor(error_bound=float(np.sqrt(achieved)), norm="inf")
        f_inf = inf.compress(smooth2d)
        assert f_l2.nbytes <= f_inf.nbytes * 1.5  # same ballpark or better

    def test_describe_and_mode(self):
        c = MGARDCompressor(norm="l2")
        assert c.mode == "mse"
        assert c.describe() == "mgard:mse"

    def test_3d(self, smooth3d):
        c = MGARDCompressor(error_bound=1e-4, norm="l2")
        recon = c.decompress(c.compress(smooth3d))
        assert mse(smooth3d, recon) <= 1e-4

    def test_invalid_norm(self):
        with pytest.raises(ValueError):
            MGARDCompressor(norm="l3")

    def test_registry_option(self):
        c = make_compressor("mgard", norm="l2", error_bound=1e-5)
        assert c.mode == "mse"


class TestFRaZWithNewModes:
    def test_fraz_drives_rel_mode(self, smooth2d):
        from repro.core.training import train

        c = SZCompressor(bound_mode="rel")
        res = train(c, smooth2d, 8.0, tolerance=0.15, regions=4, seed=0)
        assert res.feasible
        assert res.error_bound <= 1.0  # rel bounds live in (0, 1]

    def test_fraz_drives_precision_mode(self, smooth3d):
        from repro.core.training import train

        c = ZFPPrecisionCompressor()
        res = train(c, smooth3d, 4.0, tolerance=0.25, regions=3,
                    max_calls_per_region=10, seed=0)
        assert res.ratio > 1.0
