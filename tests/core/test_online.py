"""Tests for the online/in-situ tuner (paper future work #2)."""

import numpy as np
import pytest

from repro.core.online import OnlineFRaZ


def _stream(n_frames=10, shape=(24, 24, 12), drift=0.03, jump_at=None, seed=51):
    r = np.random.default_rng(seed)
    x, y, z = np.meshgrid(
        np.linspace(0, 4, shape[0]), np.linspace(0, 4, shape[1]),
        np.linspace(0, 4, shape[2]), indexing="ij",
    )
    frames = []
    for t in range(n_frames):
        f = np.sin(x + drift * t) * np.cos(y + z)
        if jump_at is not None and t >= jump_at:
            # Regime change: much rougher content.
            f = f + 0.3 * r.standard_normal(shape)
        else:
            f = f + 0.01 * r.standard_normal(shape)
        frames.append(f.astype(np.float32))
    return frames


class TestOnlineFRaZ:
    def test_steady_state_one_compression_per_frame(self):
        tuner = OnlineFRaZ(compressor="sz", target_ratio=10.0, tolerance=0.1)
        results = [tuner.push(f) for f in _stream()]
        assert results[0].retrained  # cold start trains
        steady = results[1:]
        assert all(not r.retrained for r in steady)
        assert all(r.evaluations == 1 for r in steady)
        assert all(r.in_band for r in results)

    def test_payload_decompresses_within_bound(self):
        tuner = OnlineFRaZ(compressor="sz", target_ratio=10.0, tolerance=0.1)
        frames = _stream(4)
        for frame in frames:
            res = tuner.push(frame)
            recon = tuner.decompress(res.payload)
            err = np.abs(recon.astype(np.float64) - frame.astype(np.float64)).max()
            assert err <= res.error_bound + 1e-12

    def test_regime_change_triggers_retrain(self):
        tuner = OnlineFRaZ(compressor="sz", target_ratio=10.0, tolerance=0.1)
        frames = _stream(n_frames=8, jump_at=4)
        results = [tuner.push(f) for f in frames]
        assert results[0].retrained
        assert any(r.retrained for r in results[4:]), "jump must force a retrain"
        # After adapting, the stream is back in band.
        assert results[-1].in_band

    def test_retrain_count_tracked(self):
        tuner = OnlineFRaZ(compressor="sz", target_ratio=10.0, tolerance=0.1)
        for f in _stream(5):
            tuner.push(f)
        assert tuner.retrain_count >= 1
        assert tuner.frames_seen == 5

    def test_max_error_bound_respected(self):
        tuner = OnlineFRaZ(compressor="sz", target_ratio=200.0, tolerance=0.1,
                           max_error_bound=1e-4, regions=3, max_calls_per_region=5)
        res = tuner.push(_stream(1)[0])
        assert res.error_bound <= 1e-4

    def test_drift_margin_preemptive_retrain(self):
        # With an aggressive margin, slow drift retrains before a miss.
        tuner = OnlineFRaZ(compressor="sz", target_ratio=10.0, tolerance=0.1,
                           drift_margin=0.95, drift_window=2)
        results = [tuner.push(f) for f in _stream(6, drift=0.1)]
        assert sum(r.retrained for r in results) >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineFRaZ(target_ratio=0)
        with pytest.raises(ValueError):
            OnlineFRaZ(tolerance=1.5)
        with pytest.raises(ValueError):
            OnlineFRaZ(drift_margin=1.5)

    def test_band_property(self):
        tuner = OnlineFRaZ(target_ratio=20.0, tolerance=0.05)
        assert tuner.band == (19.0, 21.0)
