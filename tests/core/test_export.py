"""Tests for CSV export helpers."""

import csv

import numpy as np
import pytest

from repro.analysis import rate_distortion_curve, ratio_curve
from repro.analysis.export import (
    write_csv,
    write_rate_distortion_csv,
    write_ratio_curve_csv,
)
from repro.sz.compressor import SZCompressor


class TestWriteCSV:
    def test_basic_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "x.csv", ["a", "b"], [(1, 2), (3, 4)])
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


class TestRatioCurveCSV:
    def test_export_from_real_sweep(self, tmp_path, smooth2d):
        bounds, ratios = ratio_curve(SZCompressor(), smooth2d,
                                     np.array([1e-3, 1e-2]))
        path = write_ratio_curve_csv(tmp_path / "curve.csv", bounds, ratios)
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["error_bound", "ratio"]
        assert len(rows) == 3
        assert float(rows[1][1]) == pytest.approx(ratios[0])

    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_ratio_curve_csv(tmp_path / "x.csv", [1.0], [1.0, 2.0])


class TestRateDistortionCSV:
    def test_export(self, tmp_path, smooth2d):
        points = rate_distortion_curve(SZCompressor(), smooth2d,
                                       np.array([1e-3, 1e-2]))
        path = write_rate_distortion_csv(tmp_path / "rd.csv", points)
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0][0] == "error_bound"
        assert len(rows) == 3
        assert float(rows[1][3]) == pytest.approx(points[0].psnr)
