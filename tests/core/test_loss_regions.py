"""Unit tests for loss construction and region splitting."""

import numpy as np
import pytest

from repro.core.loss import (
    DEFAULT_GAMMA,
    clamped_absolute_loss,
    clamped_square_loss,
    cutoff_for,
)
from repro.core.regions import split_regions


class TestLoss:
    def test_square_distance(self):
        loss = clamped_square_loss(lambda e: 12.0, target_ratio=10.0)
        assert loss(0.1) == pytest.approx(4.0)

    def test_exact_target_zero(self):
        loss = clamped_square_loss(lambda e: 10.0, target_ratio=10.0)
        assert loss(0.5) == 0.0

    def test_clamped_at_gamma(self):
        loss = clamped_square_loss(lambda e: 1e200, target_ratio=10.0)
        assert loss(0.1) == DEFAULT_GAMMA

    def test_infinite_ratio_clamped(self):
        loss = clamped_square_loss(lambda e: float("inf"), target_ratio=10.0)
        assert loss(0.1) == DEFAULT_GAMMA

    def test_absolute_variant(self):
        loss = clamped_absolute_loss(lambda e: 12.0, target_ratio=10.0)
        assert loss(0.1) == pytest.approx(2.0)

    def test_gamma_default_is_80_percent_of_max(self):
        assert DEFAULT_GAMMA == pytest.approx(0.8 * np.finfo(np.float64).max)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            clamped_square_loss(lambda e: 1.0, target_ratio=0.0)

    def test_cutoff_value(self):
        assert cutoff_for(10.0, 0.1) == pytest.approx(1.0)
        assert cutoff_for(10.0, 0.1, squared=False) == pytest.approx(1.0)
        assert cutoff_for(20.0, 0.05) == pytest.approx(1.0)

    def test_cutoff_consistent_with_band(self):
        # A ratio exactly at the band edge produces loss exactly at cutoff.
        target, eps = 15.0, 0.1
        loss = clamped_square_loss(lambda e: target * (1 + eps), target)
        assert loss(0.1) == pytest.approx(cutoff_for(target, eps))


class TestRegions:
    def test_union_covers_interval(self):
        regions = split_regions(0.0, 1.0, 12, overlap=0.1)
        assert regions[0][0] == 0.0
        assert regions[-1][1] == 1.0
        for (_, hi_prev), (lo_next, _) in zip(regions, regions[1:]):
            assert lo_next < hi_prev  # genuine overlap

    def test_region_count(self):
        assert len(split_regions(0, 10, 7)) == 7

    def test_overlap_amount(self):
        regions = split_regions(0.0, 12.0, 12, overlap=0.1)
        width = 1.0
        lo, hi = regions[5]
        assert hi - lo == pytest.approx(width * 1.2)

    def test_end_regions_slightly_smaller(self):
        regions = split_regions(0.0, 12.0, 12, overlap=0.1)
        interior = regions[5][1] - regions[5][0]
        first = regions[0][1] - regions[0][0]
        last = regions[-1][1] - regions[-1][0]
        assert first < interior and last < interior

    def test_zero_overlap_partitions(self):
        regions = split_regions(0.0, 10.0, 5, overlap=0.0)
        for (_, hi_prev), (lo_next, _) in zip(regions, regions[1:]):
            assert hi_prev == pytest.approx(lo_next)

    def test_single_region(self):
        assert split_regions(1.0, 2.0, 1) == [(1.0, 2.0)]

    def test_monotone_ascending(self):
        regions = split_regions(0.0, 5.0, 9, overlap=0.2)
        los = [lo for lo, _ in regions]
        assert los == sorted(los)

    @pytest.mark.parametrize("bad", [(1.0, 1.0, 3, 0.1), (0.0, 1.0, 0, 0.1), (0.0, 1.0, 3, 0.7)])
    def test_validation(self, bad):
        lower, upper, k, overlap = bad
        with pytest.raises(ValueError):
            split_regions(lower, upper, k, overlap)
