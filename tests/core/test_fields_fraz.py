"""Tests for Algorithm 3 (fields/time-steps) and the FRaZ front-end."""

import numpy as np
import pytest

from repro.core import FRaZ, tune_fields, tune_time_series
from repro.sz.compressor import SZCompressor


def _series(n_steps=6, shape=(24, 24, 12), drift=0.03, seed=31):
    r = np.random.default_rng(seed)
    x, y, z = np.meshgrid(
        np.linspace(0, 4, shape[0]), np.linspace(0, 4, shape[1]),
        np.linspace(0, 4, shape[2]), indexing="ij",
    )
    return [
        (np.sin(x + drift * t) * np.cos(y + z) + 0.01 * r.standard_normal(shape)).astype(
            np.float32
        )
        for t in range(n_steps)
    ]


@pytest.fixture(scope="module")
def series():
    return _series()


class TestTimeSeries:
    def test_all_steps_converge(self, series):
        res = tune_time_series(SZCompressor(), series, 10.0, tolerance=0.1, seed=0)
        assert res.converged_fraction == 1.0

    def test_reuse_skips_training(self, series):
        res = tune_time_series(SZCompressor(), series, 10.0, tolerance=0.1, seed=0)
        # Slowly drifting data: only the first step should retrain.
        assert res.retrain_steps[0] == 0
        assert len(res.retrain_steps) <= 2
        reused = [s for s in res.steps[1:] if s.used_prediction]
        assert len(reused) >= len(series) - 2

    def test_reuse_disabled_retrains_everywhere(self, series):
        res = tune_time_series(
            SZCompressor(), series, 10.0, tolerance=0.1, seed=0, reuse_prediction=False
        )
        assert res.retrain_steps == list(range(len(series)))

    def test_reuse_cheaper_than_retraining(self, series):
        with_reuse = tune_time_series(SZCompressor(), series, 10.0, seed=0)
        without = tune_time_series(
            SZCompressor(), series, 10.0, seed=0, reuse_prediction=False
        )
        assert with_reuse.total_evaluations < without.total_evaluations

    def test_field_name_recorded(self, series):
        res = tune_time_series(SZCompressor(), series, 10.0, field_name="CLOUD", seed=0)
        assert res.field_name == "CLOUD"


class TestTuneFields:
    def test_two_fields(self, series):
        fields = {"A": series[:3], "B": [s * 2 for s in series[:3]]}
        res = tune_fields(SZCompressor(), fields, 10.0, tolerance=0.1, seed=0)
        assert set(res.fields) == {"A", "B"}
        for f in res.fields.values():
            assert f.converged_fraction == 1.0

    def test_longest_field_seconds(self, series):
        fields = {"A": series[:2]}
        res = tune_fields(SZCompressor(), fields, 10.0, seed=0)
        assert res.longest_field_seconds > 0
        assert res.total_wall_seconds >= res.longest_field_seconds


class TestFRaZ:
    def test_tune_and_compress(self, series):
        fraz = FRaZ(compressor="sz", target_ratio=10.0, tolerance=0.1)
        payload, result = fraz.compress(series[0])
        assert result.within_tolerance
        recon = fraz.decompress(payload)
        err = np.abs(recon.astype(np.float64) - series[0].astype(np.float64)).max()
        assert err <= result.error_bound + 1e-12

    def test_accepts_compressor_instance(self, series):
        fraz = FRaZ(compressor=SZCompressor(block_size=6), target_ratio=8.0)
        res = fraz.tune(series[0])
        assert res.feasible

    def test_tune_series_api(self, series):
        fraz = FRaZ(compressor="sz", target_ratio=10.0)
        res = fraz.tune_series(series[:3], field_name="f")
        assert res.converged_fraction == 1.0

    def test_tune_dataset_api(self, series):
        fraz = FRaZ(compressor="sz", target_ratio=10.0)
        res = fraz.tune_dataset({"a": series[:2], "b": series[2:4]})
        assert set(res.fields) == {"a", "b"}

    def test_max_error_bound_respected(self, series):
        fraz = FRaZ(compressor="sz", target_ratio=60.0, tolerance=0.1,
                    max_error_bound=1e-5, max_calls_per_region=4, regions=3)
        res = fraz.tune(series[0])
        assert res.error_bound <= 1e-5

    def test_validation(self):
        with pytest.raises(ValueError):
            FRaZ(target_ratio=-5)
        with pytest.raises(ValueError):
            FRaZ(tolerance=2.0)

    def test_unknown_compressor_name(self):
        with pytest.raises(KeyError):
            FRaZ(compressor="nope")
