"""Tests for Algorithm 1 (worker task) and Algorithm 2 (training)."""

import numpy as np
import pytest

from repro.core.training import train
from repro.core.worker import worker_task
from repro.parallel.executor import SerialExecutor, ThreadExecutor
from repro.sz.compressor import SZCompressor


@pytest.fixture(scope="module")
def field():
    r = np.random.default_rng(21)
    x, y, z = np.meshgrid(
        np.linspace(0, 4, 24), np.linspace(0, 4, 24), np.linspace(0, 4, 12),
        indexing="ij",
    )
    return (np.sin(x) * np.cos(y + z) + 0.01 * r.standard_normal(x.shape)).astype(
        np.float32
    )


@pytest.fixture(scope="module")
def sz():
    return SZCompressor()


class TestWorkerTask:
    def test_finds_feasible_target(self, sz, field):
        lo, hi = sz.default_bound_range(field)
        res = worker_task(sz, field, target_ratio=10.0, tolerance=0.1, region=(lo, hi))
        assert res.feasible
        assert 9.0 <= res.ratio <= 11.0

    def test_returned_bound_reproduces_ratio(self, sz, field):
        lo, hi = sz.default_bound_range(field)
        res = worker_task(sz, field, 10.0, 0.1, (lo, hi))
        again = sz.with_error_bound(res.error_bound).compress(field).ratio
        assert again == pytest.approx(res.ratio)

    def test_prediction_short_circuit(self, sz, field):
        lo, hi = sz.default_bound_range(field)
        first = worker_task(sz, field, 10.0, 0.1, (lo, hi))
        res = worker_task(sz, field, 10.0, 0.1, (lo, hi), prediction=first.error_bound)
        assert res.used_prediction
        assert res.evaluations == 1

    def test_bad_prediction_falls_through(self, sz, field):
        lo, hi = sz.default_bound_range(field)
        res = worker_task(sz, field, 10.0, 0.1, (lo, hi), prediction=hi)
        assert not res.used_prediction

    def test_infeasible_returns_closest(self, sz, field):
        lo, hi = sz.default_bound_range(field)
        # Every bound yields CR >= ~1.06, so 0.5 sits below the floor.
        res = worker_task(sz, field, 0.5, 0.05, (lo, hi), max_calls=8)
        assert not res.feasible
        assert res.ratio > 0

    def test_validation(self, sz, field):
        with pytest.raises(ValueError):
            worker_task(sz, field, -1.0, 0.1, (0.0, 1.0))
        with pytest.raises(ValueError):
            worker_task(sz, field, 10.0, 1.5, (0.0, 1.0))


class TestTraining:
    def test_feasible_search(self, sz, field):
        res = train(sz, field, 10.0, tolerance=0.1, regions=4, seed=0)
        assert res.feasible and res.within_tolerance

    def test_result_reproducible(self, sz, field):
        res = train(sz, field, 10.0, tolerance=0.1, regions=4, seed=0)
        ratio = sz.with_error_bound(res.error_bound).compress(field).ratio
        assert ratio == pytest.approx(res.ratio)

    def test_infeasible_reports_closest(self, sz, field):
        # Every error bound yields CR >= ~1.06, so 0.5 is unreachable.
        res = train(sz, field, 0.5, tolerance=0.05, regions=3,
                    max_calls_per_region=6, seed=0)
        assert not res.feasible
        # The reported point is the closest the search observed.
        assert res.ratio == min(
            (w.ratio for w in res.workers),
            key=lambda r: (r - 0.5) ** 2,
        )

    def test_early_cancellation_limits_work(self, sz, field):
        res = train(sz, field, 10.0, tolerance=0.1, regions=8,
                    max_calls_per_region=16, seed=0)
        # Serial executor stops at the first feasible region: far fewer
        # evaluations than the full 8 * 16 worst case.
        assert res.evaluations < 8 * 16 / 2

    def test_prediction_fast_path(self, sz, field):
        first = train(sz, field, 10.0, tolerance=0.1, regions=4, seed=0)
        res = train(sz, field, 10.0, tolerance=0.1, regions=4, seed=0,
                    prediction=first.error_bound)
        assert res.used_prediction
        assert res.evaluations == 1

    def test_failed_probe_is_accounted(self, sz, field):
        # A prediction probe that does NOT short-circuit must still show
        # up in the totals: its evaluations, compress seconds and cache
        # traffic were paid, and it joins the workers tuple.
        lo, hi = sz.default_bound_range(field)
        res = train(sz, field, 10.0, tolerance=0.1, regions=4, seed=0,
                    prediction=hi)  # hi is a terrible prediction
        assert not res.used_prediction
        probe = res.workers[0]
        assert probe.region == (lo, hi)  # the probe owns the full range
        assert probe.evaluations >= 1
        assert res.evaluations == sum(w.evaluations for w in res.workers)
        assert res.compress_seconds == pytest.approx(
            sum(w.compress_seconds for w in res.workers))

    def test_failed_probe_cache_traffic_counted(self, sz, field):
        from repro.cache.evalcache import EvalCache

        cache = EvalCache()
        train(sz, field, 10.0, tolerance=0.1, regions=4, seed=0, cache=cache)
        _, hi = sz.default_bound_range(field)
        res = train(sz, field, 10.0, tolerance=0.1, regions=4, seed=0,
                    cache=cache, prediction=hi)
        # The probe's hit/miss totals are inside the result's, so
        # compressor_calls == evaluations - cache_hits stays honest.
        assert res.cache_hits == sum(w.cache_hits for w in res.workers)
        assert res.cache_misses == sum(w.cache_misses for w in res.workers)
        assert res.workers[0].evaluations >= 1
        assert res.compressor_calls == res.evaluations - res.cache_hits

    def test_respects_upper_bound_cap(self, sz, field):
        # A tiny U makes high ratios unreachable.
        res = train(sz, field, 50.0, tolerance=0.1, upper=1e-6,
                    regions=3, max_calls_per_region=5, seed=0)
        for w in res.workers:
            assert w.region[1] <= 1e-6

    def test_thread_executor_equivalent_feasibility(self, sz, field):
        serial = train(sz, field, 10.0, tolerance=0.1, regions=4, seed=0,
                       executor=SerialExecutor())
        threaded = train(sz, field, 10.0, tolerance=0.1, regions=4, seed=0,
                         executor=ThreadExecutor(workers=4))
        assert serial.feasible and threaded.feasible
        assert threaded.within_tolerance

    def test_invalid_range(self, sz, field):
        with pytest.raises(ValueError):
            train(sz, field, 10.0, lower=1.0, upper=0.5)
