"""Behavioural tests for the MGARD compressor."""

import numpy as np
import pytest

from repro.mgard.compressor import MGARDCompressor, _level_budgets
from repro.pressio import make_compressor


def _maxerr(a, b):
    return float(np.abs(a.astype(np.float64) - b.astype(np.float64)).max())


class TestBudgets:
    def test_budgets_telescope_to_bound(self):
        for levels in (0, 1, 3, 7):
            det, coarse = _level_budgets(1.0, levels)
            assert sum(det) + coarse == pytest.approx(1.0)

    def test_finest_level_largest_budget(self):
        det, coarse = _level_budgets(1.0, 4)
        assert det[0] == max(det)
        assert coarse <= det[-1]


class TestRoundtrip:
    @pytest.mark.parametrize("eb", [1e-4, 1e-3, 1e-2, 1e-1])
    def test_error_bound_2d(self, smooth2d, eb):
        c = MGARDCompressor(error_bound=eb)
        assert _maxerr(smooth2d, c.decompress(c.compress(smooth2d))) <= eb

    @pytest.mark.parametrize("eb", [1e-3, 1e-1])
    def test_error_bound_3d(self, smooth3d, eb):
        c = MGARDCompressor(error_bound=eb)
        assert _maxerr(smooth3d, c.decompress(c.compress(smooth3d))) <= eb

    def test_error_bound_sparse(self, sparse3d):
        c = MGARDCompressor(error_bound=1e-2)
        assert _maxerr(sparse3d, c.decompress(c.compress(sparse3d))) <= 1e-2

    def test_float64(self, smooth2d):
        data = smooth2d.astype(np.float64)
        c = MGARDCompressor(error_bound=1e-9)
        recon = c.decompress(c.compress(data))
        assert recon.dtype == np.float64
        assert _maxerr(data, recon) <= 1e-9

    def test_shape_preserved_odd_sizes(self):
        r = np.random.default_rng(0)
        data = r.normal(0, 1, (17, 23)).astype(np.float32)
        c = MGARDCompressor(error_bound=1e-2)
        recon = c.decompress(c.compress(data))
        assert recon.shape == (17, 23)
        assert _maxerr(data, recon) <= 1e-2

    def test_tiny_grid_zero_levels(self):
        data = np.ones((3, 3), np.float32) * 2.0
        c = MGARDCompressor(error_bound=1e-3)
        assert _maxerr(data, c.decompress(c.compress(data))) <= 1e-3

    def test_ratio_grows_with_bound(self, smooth2d):
        r1 = MGARDCompressor(error_bound=1e-4).compress(smooth2d).ratio
        r2 = MGARDCompressor(error_bound=1e-1).compress(smooth2d).ratio
        assert r2 > r1

    def test_escape_path_extreme_dynamic_range(self):
        # Huge outliers force quantization codes past the radius -> escapes.
        data = np.ones((20, 20), np.float32)
        data[5, 5] = 1e9
        data[10, 10] = -1e9
        c = MGARDCompressor(error_bound=1e-3)
        assert _maxerr(data, c.decompress(c.compress(data))) <= 1e-3


class TestValidation:
    def test_rejects_1d(self, smooth1d):
        with pytest.raises(ValueError):
            MGARDCompressor().compress(smooth1d)

    def test_rejects_nonpositive_bound(self, smooth2d):
        with pytest.raises(ValueError):
            MGARDCompressor(error_bound=0).compress(smooth2d)

    def test_rejects_int(self):
        with pytest.raises(TypeError):
            MGARDCompressor().compress(np.ones((4, 4), np.int32))

    def test_empty(self):
        c = MGARDCompressor()
        recon = c.decompress(c.compress(np.zeros((0, 0), np.float32)))
        assert recon.shape == (0, 0)

    def test_registry_and_describe(self):
        c = make_compressor("mgard", error_bound=0.1)
        assert isinstance(c, MGARDCompressor)
        assert c.describe() == "mgard:abs"

    def test_with_error_bound(self):
        c = MGARDCompressor(error_bound=1.0).with_error_bound(2.0)
        assert c.error_bound == 2.0
