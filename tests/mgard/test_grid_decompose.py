"""Unit tests for the MGARD grid hierarchy and decomposition."""

import numpy as np
import pytest

from repro.mgard.decompose import decompose, detail_sizes, recompose
from repro.mgard.grid import detail_mask, level_shape, num_levels, upsample


class TestLevelShape:
    def test_ceil_halving(self):
        assert level_shape((9, 8), 1) == (5, 4)
        assert level_shape((9, 8), 2) == (3, 2)

    def test_level_zero_identity(self):
        assert level_shape((7, 7), 0) == (7, 7)


class TestNumLevels:
    def test_small_grid_no_levels(self):
        assert num_levels((3, 3)) == 0
        assert num_levels((4, 4)) == 0  # next level would be (2, 2) < MIN_COARSE

    def test_larger_grid(self):
        assert num_levels((9, 9)) >= 1

    def test_cap(self):
        assert num_levels((10**6, 10**6), max_levels=3) == 3


class TestUpsample:
    def test_even_positions_copied(self):
        coarse = np.array([1.0, 2.0, 3.0])
        fine = upsample(coarse, (5,))
        assert fine[::2].tolist() == [1.0, 2.0, 3.0]

    def test_odd_positions_averaged(self):
        coarse = np.array([0.0, 2.0, 4.0])
        fine = upsample(coarse, (5,))
        assert fine.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_even_length_boundary_copies(self):
        coarse = np.array([1.0, 3.0])
        fine = upsample(coarse, (4,))
        # Position 3 has no right neighbour: copy coarse[1].
        assert fine.tolist() == [1.0, 2.0, 3.0, 3.0]

    def test_2d_separable(self):
        coarse = np.array([[0.0, 2.0], [4.0, 6.0]])
        fine = upsample(coarse, (3, 3))
        assert fine[0].tolist() == [0.0, 1.0, 2.0]
        assert fine[1].tolist() == [2.0, 3.0, 4.0]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            upsample(np.zeros(2), (7,))

    def test_nonexpansive_max_norm(self):
        r = np.random.default_rng(0)
        coarse = r.normal(0, 1, (5, 5))
        fine = upsample(coarse, (9, 9))
        assert np.abs(fine).max() <= np.abs(coarse).max() + 1e-12


class TestDetailMask:
    def test_counts(self):
        mask = detail_mask((5, 5))
        assert int(mask.sum()) == 25 - 9  # fine minus coarse points

    def test_coarse_points_excluded(self):
        mask = detail_mask((5, 5))
        assert not mask[::2, ::2].any()
        assert mask[1::2, :].all()


class TestDecompose:
    def test_roundtrip_exact_without_quantization(self, smooth2d):
        levels = num_levels(smooth2d.shape)
        coarse, details = decompose(smooth2d, levels)
        recon = recompose(coarse, details, smooth2d.shape, levels)
        assert np.allclose(recon, smooth2d.astype(np.float64), atol=1e-12)

    def test_roundtrip_3d(self, smooth3d):
        levels = num_levels(smooth3d.shape)
        coarse, details = decompose(smooth3d, levels)
        recon = recompose(coarse, details, smooth3d.shape, levels)
        assert np.allclose(recon, smooth3d.astype(np.float64), atol=1e-12)

    def test_detail_sizes_match(self, smooth2d):
        levels = num_levels(smooth2d.shape)
        _, details = decompose(smooth2d, levels)
        sizes = detail_sizes(smooth2d.shape, levels)
        assert [d.size for d in details] == sizes

    def test_smooth_field_details_are_small(self, smooth2d):
        levels = num_levels(smooth2d.shape)
        _, details = decompose(smooth2d, levels)
        # Fine-level details of a smooth field are much smaller than values.
        assert np.abs(details[0]).mean() < 0.1 * np.abs(smooth2d).mean()

    def test_zero_levels(self, smooth2d):
        coarse, details = decompose(smooth2d, 0)
        assert details == []
        assert (coarse == smooth2d.astype(np.float64)).all()
