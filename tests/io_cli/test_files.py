"""Tests for .frz file persistence and archives."""

import numpy as np
import pytest

from repro.io.files import Archive, load_field, read_info, save_field
from repro.sz.compressor import SZCompressor
from repro.zfp.compressor import ZFPCompressor


@pytest.fixture()
def field():
    r = np.random.default_rng(71)
    return r.standard_normal((24, 24)).cumsum(axis=0).astype(np.float32)


class TestSingleField:
    def test_save_load_roundtrip(self, tmp_path, field):
        path = tmp_path / "f.frz"
        comp = SZCompressor(error_bound=1e-3)
        payload = save_field(path, field, comp)
        data, meta = load_field(path)
        assert data.shape == field.shape
        err = np.abs(data.astype(np.float64) - field.astype(np.float64)).max()
        assert err <= 1e-3
        assert meta["compressor"] == "sz"
        assert meta["ratio"] == pytest.approx(payload.ratio)

    def test_save_precompressed_payload(self, tmp_path, field):
        comp = ZFPCompressor(error_bound=1e-2)
        payload = comp.compress(field)
        path = tmp_path / "f.frz"
        save_field(path, payload, comp)
        data, meta = load_field(path)
        assert meta["compressor"] == "zfp"
        assert np.abs(data.astype(np.float64) - field.astype(np.float64)).max() <= 1e-2

    def test_user_metadata_roundtrip(self, tmp_path, field):
        path = tmp_path / "f.frz"
        save_field(path, field, SZCompressor(error_bound=1e-2),
                   metadata={"field": "CLOUD", "step": 7})
        info = read_info(path)
        assert info["user"] == {"field": "CLOUD", "step": 7}
        assert info["error_bound"] == 1e-2

    def test_read_info_does_not_decompress(self, tmp_path, field):
        path = tmp_path / "f.frz"
        save_field(path, field, SZCompressor(error_bound=1e-3))
        info = read_info(path)
        assert info["original_nbytes"] == field.nbytes


class TestArchive:
    def test_multi_entry_roundtrip(self, tmp_path, field):
        path = tmp_path / "run.frza"
        comp = SZCompressor(error_bound=1e-3)
        steps = [field, (field * np.float32(2.0)).astype(np.float32)]
        with Archive.create(path) as ar:
            for t, step in enumerate(steps):
                ar.add(f"CLOUD/t{t:03d}", step, comp, metadata={"step": t})

        reader = Archive.open(path)
        assert reader.names() == ["CLOUD/t000", "CLOUD/t001"]
        data, meta = reader.load("CLOUD/t001")
        assert meta["user"]["step"] == 1
        err = np.abs(data.astype(np.float64) - steps[1].astype(np.float64)).max()
        assert err <= 1e-3

    def test_random_access_info(self, tmp_path, field):
        path = tmp_path / "run.frza"
        with Archive.create(path) as ar:
            ar.add("a", field, SZCompressor(error_bound=1e-2))
            ar.add("b", field, ZFPCompressor(error_bound=1e-2))
        reader = Archive.open(path)
        assert reader.info("a")["compressor"] == "sz"
        assert reader.info("b")["compressor"] == "zfp"

    def test_duplicate_entry_rejected(self, tmp_path, field):
        with Archive.create(tmp_path / "x.frza") as ar:
            ar.add("a", field, SZCompressor(error_bound=1e-2))
            with pytest.raises(KeyError):
                ar.add("a", field, SZCompressor(error_bound=1e-2))

    def test_readonly_archive_rejects_add(self, tmp_path, field):
        path = tmp_path / "x.frza"
        with Archive.create(path) as ar:
            ar.add("a", field, SZCompressor(error_bound=1e-2))
        reader = Archive.open(path)
        with pytest.raises(PermissionError):
            reader.add("b", field, SZCompressor(error_bound=1e-2))

    def test_mixed_compressors_per_entry(self, tmp_path, field):
        path = tmp_path / "mixed.frza"
        with Archive.create(path) as ar:
            ar.add("sz", field, SZCompressor(error_bound=1e-3))
            ar.add("zfp", field, ZFPCompressor(error_bound=1e-3))
        reader = Archive.open(path)
        for name in ("sz", "zfp"):
            data, _ = reader.load(name)
            assert np.abs(data.astype(np.float64) - field.astype(np.float64)).max() <= 1e-3
