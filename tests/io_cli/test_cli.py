"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture()
def npy_field(tmp_path):
    r = np.random.default_rng(81)
    data = r.standard_normal((32, 32)).cumsum(axis=0).astype(np.float32)
    path = tmp_path / "field.npy"
    np.save(path, data)
    return path, data


class TestCompressDecompress:
    def test_fixed_bound_roundtrip(self, tmp_path, npy_field, capsys):
        src, data = npy_field
        frz = tmp_path / "field.frz"
        out = tmp_path / "recon.npy"
        assert main(["compress", str(src), str(frz), "-e", "1e-2"]) == 0
        assert "ratio" in capsys.readouterr().out
        assert main(["decompress", str(frz), str(out)]) == 0
        recon = np.load(out)
        assert np.abs(recon.astype(np.float64) - data.astype(np.float64)).max() <= 1e-2

    def test_fixed_ratio_compress(self, tmp_path, npy_field, capsys):
        src, data = npy_field
        frz = tmp_path / "field.frz"
        rc = main(["compress", str(src), str(frz), "-r", "8", "-t", "0.15"])
        out = capsys.readouterr().out
        assert "tuned bound" in out
        if rc == 0:  # feasible
            assert "in band" in out

    def test_compressor_selection(self, tmp_path, npy_field):
        src, _ = npy_field
        frz = tmp_path / "z.frz"
        assert main(["compress", str(src), str(frz), "-e", "1e-2", "-c", "zfp"]) == 0
        assert main(["info", str(frz)]) == 0

    def test_requires_ratio_or_bound(self, tmp_path, npy_field):
        src, _ = npy_field
        with pytest.raises(SystemExit):
            main(["compress", str(src), str(tmp_path / "x.frz")])


class TestTuneInfoDatasets:
    def test_tune_prints_json(self, npy_field, capsys):
        src, _ = npy_field
        rc = main(["tune", str(src), "-r", "8", "-t", "0.15"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["target_ratio"] == 8
        assert payload["evaluations"] >= 1
        assert rc in (0, 2)

    def test_info_shows_metadata(self, tmp_path, npy_field, capsys):
        src, _ = npy_field
        frz = tmp_path / "f.frz"
        main(["compress", str(src), str(frz), "-e", "1e-3"])
        capsys.readouterr()
        assert main(["info", str(frz)]) == 0
        meta = json.loads(capsys.readouterr().out)
        assert meta["compressor"] == "sz"

    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("Hurricane", "HACC", "CESM", "Exaalt", "NYX"):
            assert name in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_max_error_bound_flag(self, npy_field, capsys):
        src, _ = npy_field
        main(["tune", str(src), "-r", "500", "-U", "1e-5"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["error_bound"] <= 1e-5
