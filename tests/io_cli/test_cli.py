"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture()
def npy_field(tmp_path):
    r = np.random.default_rng(81)
    data = r.standard_normal((32, 32)).cumsum(axis=0).astype(np.float32)
    path = tmp_path / "field.npy"
    np.save(path, data)
    return path, data


class TestCompressDecompress:
    def test_fixed_bound_roundtrip(self, tmp_path, npy_field, capsys):
        src, data = npy_field
        frz = tmp_path / "field.frz"
        out = tmp_path / "recon.npy"
        assert main(["compress", str(src), str(frz), "-e", "1e-2"]) == 0
        assert "ratio" in capsys.readouterr().out
        assert main(["decompress", str(frz), str(out)]) == 0
        recon = np.load(out)
        assert np.abs(recon.astype(np.float64) - data.astype(np.float64)).max() <= 1e-2

    def test_fixed_ratio_compress(self, tmp_path, npy_field, capsys):
        src, data = npy_field
        frz = tmp_path / "field.frz"
        rc = main(["compress", str(src), str(frz), "-r", "8", "-t", "0.15"])
        out = capsys.readouterr().out
        assert "tuned bound" in out
        if rc == 0:  # feasible
            assert "in band" in out

    def test_compressor_selection(self, tmp_path, npy_field):
        src, _ = npy_field
        frz = tmp_path / "z.frz"
        assert main(["compress", str(src), str(frz), "-e", "1e-2", "-c", "zfp"]) == 0
        assert main(["info", str(frz)]) == 0

    def test_requires_ratio_or_bound(self, tmp_path, npy_field):
        src, _ = npy_field
        with pytest.raises(SystemExit):
            main(["compress", str(src), str(tmp_path / "x.frz")])


class TestTuneInfoDatasets:
    def test_tune_prints_json(self, npy_field, capsys):
        src, _ = npy_field
        rc = main(["tune", str(src), "-r", "8", "-t", "0.15"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["target_ratio"] == 8
        assert payload["evaluations"] >= 1
        assert rc in (0, 2)

    def test_info_shows_metadata(self, tmp_path, npy_field, capsys):
        src, _ = npy_field
        frz = tmp_path / "f.frz"
        main(["compress", str(src), str(frz), "-e", "1e-3"])
        capsys.readouterr()
        assert main(["info", str(frz)]) == 0
        meta = json.loads(capsys.readouterr().out)
        assert meta["compressor"] == "sz"

    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("Hurricane", "HACC", "CESM", "Exaalt", "NYX"):
            assert name in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_max_error_bound_flag(self, npy_field, capsys):
        src, _ = npy_field
        main(["tune", str(src), "-r", "500", "-U", "1e-5"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["error_bound"] <= 1e-5


class TestJsonSchemaOutput:
    def test_tune_json_matches_service_schema(self, npy_field, capsys):
        src, _ = npy_field
        rc = main(["tune", str(src), "-r", "8", "-t", "0.15", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "tune"
        assert payload["within_tolerance"] is (rc == 0)
        for key in ("compressor_calls", "compress_seconds", "cache",
                    "wall_seconds", "evaluations"):
            assert key in payload
        assert payload["cache"]["misses"] >= 1

    def test_compress_json_fixed_bound(self, tmp_path, npy_field, capsys):
        src, _ = npy_field
        frz = tmp_path / "f.frz"
        assert main(["compress", str(src), str(frz), "-e", "1e-2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "compress"
        assert payload["streamed"] is False
        assert payload["tuning"] is None
        assert payload["output"] == str(frz)
        assert payload["ratio"] > 1

    def test_compress_json_tuned_nests_tuning(self, tmp_path, npy_field, capsys):
        src, _ = npy_field
        frz = tmp_path / "f.frz"
        main(["compress", str(src), str(frz), "-r", "8", "-t", "0.15", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["tuning"]["kind"] == "tune"
        assert payload["error_bound"] == payload["tuning"]["error_bound"]


class TestVersionAndRun:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_run_executes_request_file(self, tmp_path, npy_field, capsys):
        from repro.api import CompressionRequest

        src, _ = npy_field
        frz = tmp_path / "r.frz"
        spec = tmp_path / "req.json"
        spec.write_text(CompressionRequest(
            kind="compress", error_bound=1e-2, input=str(src),
            output=str(frz)).to_json())
        assert main(["run", str(spec)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "compress" and frz.exists()

    def test_run_missing_file_is_clean_error(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert capsys.readouterr().err.startswith("error: cannot read")

    def test_run_invalid_spec_is_clean_error(self, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text('{"kind": "frobnicate"}')
        assert main(["run", str(spec)]) == 2
        assert "error: invalid request" in capsys.readouterr().err

    def test_datasets_listing_is_sorted(self, capsys):
        assert main(["datasets"]) == 0
        rows = capsys.readouterr().out.strip().splitlines()[2:]
        names = [row.split()[0] for row in rows]
        assert names == sorted(names, key=str.lower)

    def test_info_output_keys_sorted(self, tmp_path, npy_field, capsys):
        src, _ = npy_field
        frz = tmp_path / "f.frz"
        main(["compress", str(src), str(frz), "-e", "1e-2"])
        capsys.readouterr()
        assert main(["info", str(frz)]) == 0
        meta = json.loads(capsys.readouterr().out)
        assert list(meta) == sorted(meta)


class TestServeSubmitParsing:
    def test_serve_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "-j", "2", "--queue-size", "8",
             "--stream-threshold", "1MiB"])
        assert args.command == "serve"
        assert args.workers == 2
        assert args.stream_threshold == 2**20

    def test_submit_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["submit", "tune", "f.npy", "-r", "10", "--priority", "high",
             "--url", "http://127.0.0.1:1"])
        assert args.command == "submit"
        assert args.priority == -10

    def test_submit_priority_rejects_garbage(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "tune", "f.npy", "-r", "10",
                                       "--priority", "soon"])

    def test_submit_tune_requires_ratio(self, npy_field, capsys):
        src, _ = npy_field
        assert main(["submit", "tune", str(src)]) == 2
        assert "require" in capsys.readouterr().err

    def test_submit_compress_requires_output(self, npy_field, capsys):
        src, _ = npy_field
        assert main(["submit", "compress", str(src), "-e", "1e-2"]) == 2
        assert "output" in capsys.readouterr().err

    def test_submit_unreachable_server_is_clean_error(self, npy_field, capsys):
        src, _ = npy_field
        rc = main(["submit", "tune", str(src), "-r", "8",
                   "--url", "http://127.0.0.1:9"])  # discard port, nothing listens
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot reach" in err

    def test_submit_round_trip_against_live_server(self, tmp_path, npy_field, capsys):
        from repro.serve import ServiceServer

        src, _ = npy_field
        with ServiceServer(port=0, workers=1) as server:
            rc = main(["submit", "tune", str(src), "-r", "8", "-t", "0.15",
                       "--url", server.url])
            payload = json.loads(capsys.readouterr().out)
        assert rc in (0, 2)
        assert payload["kind"] == "tune"
        assert payload["target_ratio"] == 8.0
