#!/usr/bin/env python
"""Keep the documentation honest: run its snippets, check its paths.

Scans ``README.md`` and every ``docs/*.md`` for:

* **fenced ``python`` blocks** — executed in an isolated namespace with
  ``src/`` on ``sys.path`` and a throwaway working directory (snippets may
  write files).  A block whose fence reads ```` ```python doc-only ````
  is only syntax-checked (for fragments with placeholders like
  ``data = ...`` that are illustrative, not self-contained);
* **backticked repository paths** (``src/...``, ``docs/...``,
  ``benchmarks/...``, ``examples/...``, ``tests/...``, ``tools/...``) —
  each must exist, so renames can't silently orphan the docs.

Exit status is non-zero on any failure; run it locally with::

    python tools/check_docs.py

The CI docs job runs exactly this, and ``tests/docs/test_doc_snippets.py``
runs it inside the tier-1 suite.
"""

from __future__ import annotations

import os
import re
import sys
import tempfile
import traceback
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

FENCE_RE = re.compile(r"^```([^\n`]*)\n(.*?)^```\s*?$", re.M | re.S)
PATH_RE = re.compile(
    r"`((?:src|docs|benchmarks|examples|tests|tools)/[A-Za-z0-9_./-]+)`"
)


def iter_markdown_files() -> list[Path]:
    return [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def check_file(md: Path, workdir: str) -> tuple[int, int, int]:
    """Returns (snippets_run, snippets_compiled, failures)."""
    text = md.read_text(encoding="utf-8")
    rel = md.relative_to(ROOT)
    ran = compiled = failures = 0

    for match in FENCE_RE.finditer(text):
        info, code = match.group(1).strip(), match.group(2)
        words = info.split()
        if not words or words[0].lower() != "python":
            continue
        line = text[: match.start()].count("\n") + 2  # first code line
        label = f"{rel}:{line}"
        try:
            code_obj = compile(code, label, "exec")
        except SyntaxError:
            print(f"FAIL (syntax)   {label}")
            traceback.print_exc()
            failures += 1
            continue
        if "doc-only" in words[1:]:
            compiled += 1
            print(f"ok   (compile)  {label}")
            continue
        namespace = {"__name__": f"_snippet_{ran}"}
        try:
            exec(code_obj, namespace)
        except Exception:
            print(f"FAIL (run)      {label}")
            traceback.print_exc()
            failures += 1
            continue
        ran += 1
        print(f"ok   (run)      {label}")

    for pmatch in PATH_RE.finditer(text):
        target = pmatch.group(1).rstrip("/")
        if not (ROOT / target).exists():
            print(f"FAIL (path)     {rel}: `{target}` does not exist")
            failures += 1

    return ran, compiled, failures


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    workdir = tempfile.mkdtemp(prefix="repro-docs-")
    cwd = os.getcwd()
    os.chdir(workdir)  # snippets write scratch files here, not in the repo
    ran = compiled = failures = 0
    try:
        for md in iter_markdown_files():
            r, c, f = check_file(md, workdir)
            ran += r
            compiled += c
            failures += f
    finally:
        os.chdir(cwd)
    print(
        f"\n{ran} snippets executed, {compiled} compile-only checked, "
        f"{failures} failures"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
