#!/usr/bin/env python
"""Open-loop load harness for the compression service (CI entry point).

Thin shim over :mod:`repro.obs.load` so CI and operators can run it as a
script without installing the package::

    PYTHONPATH=src python tools/load_harness.py --profile serve --relax 4

Replays the request mix in ``benchmarks/load_mix.json`` at the profile's
target RPS (profiles and thresholds live in ``benchmarks/slo.json``),
writes a diffable ``BENCH_<profile>.json`` snapshot, and exits non-zero
on any SLO violation.  `repro load` is the same harness as a subcommand.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.load import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
