#!/usr/bin/env python
"""CI smoke test for the compression service.

Starts ``repro serve`` as a real subprocess on a random free port — once
per execution backend (``thread``, then ``process``) — drives it over
HTTP with :class:`repro.serve.ServiceClient` — one compress job, one tune
job, plus a burst of duplicate tunes to exercise coalescing — and asserts
the results and the ``/stats`` counters.  The whole script enforces a
hard deadline (default 120 s for both backends together) and always
tears the server down.

Run it locally with::

    PYTHONPATH=src python tools/service_smoke.py

Exit status is non-zero on any failure; the CI ``service-smoke`` job
runs exactly this under a matching external timeout.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DEADLINE_SECONDS = 120.0
BACKENDS = ("thread", "process")

sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.serve import ServiceClient  # noqa: E402


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_for_health(client: ServiceClient, deadline: float) -> None:
    while time.monotonic() < deadline:
        try:
            if client.health()["status"] == "ok":
                return
        except Exception:
            time.sleep(0.1)
    raise TimeoutError("service never became healthy")


def run_backend(executor: str, deadline: float) -> int:
    """One full smoke pass against a server using ``--executor <mode>``."""
    print(f"=== backend: {executor} ===")
    workdir = Path(tempfile.mkdtemp(prefix=f"repro-smoke-{executor}-"))
    rng = np.random.default_rng(42)
    data = rng.standard_normal((32, 32)).cumsum(axis=0).astype(np.float32)
    src = workdir / "field.npy"
    out = workdir / "field.frz"
    np.save(src, data)

    port = free_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port), "-j", "2",
         "--executor", executor],
        env=env, cwd=workdir,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout=10.0)
    failures = 0
    try:
        wait_for_health(client, deadline)
        print(f"service up on port {port}")

        # 1. compress job via path
        ticket = client.submit(kind="compress", error_bound=1e-2,
                               input=str(src), output=str(out))
        result = client.result(ticket["job_id"], timeout=60)
        assert result["kind"] == "compress", result
        assert Path(result["output"]).exists(), result
        assert result["ratio"] > 1, result
        print(f"compress ok: ratio {result['ratio']:.2f}:1 -> {result['output']}")

        # 2. tune job with the array inline
        ticket = client.submit_array(data, kind="tune", target_ratio=8.0,
                                     tolerance=0.15)
        tuned = client.result(ticket["job_id"], timeout=60)
        assert tuned["kind"] == "tune", tuned
        assert tuned["error_bound"] > 0, tuned
        assert tuned["evaluations"] >= 1, tuned
        print(f"tune ok: bound {tuned['error_bound']:.4e} "
              f"ratio {tuned['ratio']:.2f}:1")

        # 3. duplicate burst: submit the same tune 6x without waiting,
        #    then collect — identical results, coalesce/cache visible.
        tickets = [
            client.submit_array(data, kind="tune", target_ratio=11.0)
            for _ in range(6)
        ]
        results = [client.result(t["job_id"], timeout=60) for t in tickets]
        bounds = {r["error_bound"] for r in results}
        assert len(bounds) == 1, bounds
        coalesced_ids = [t["coalesced_into"] for t in tickets if t["coalesced_into"]]
        print(f"duplicate burst ok: {len(coalesced_ids)}/5 coalesced")

        # 4. /stats counters add up
        stats = client.stats()
        jobs = stats["jobs"]
        assert jobs["submitted"] == 8, jobs
        assert jobs["completed"] == 8, jobs
        assert jobs["failed"] == 0, jobs
        assert jobs["coalesced"] == len(coalesced_ids), jobs
        # Duplicates were either coalesced (no execution) or fully
        # cache-answered (executed with zero compressor calls).
        search = stats["search"]
        assert search["evaluations"] >= search["compressor_calls"], search
        assert stats["cache"]["entries"] > 0, stats["cache"]
        assert stats["queue"]["rejected"] == 0, stats["queue"]
        # The executor section reports the backend actually running.
        assert stats["executor"]["mode"] == executor, stats["executor"]
        assert stats["executor"]["worker_crashes"] == 0, stats["executor"]
        print(f"stats ok: {jobs}")
        print(f"search: {search}")
        print(f"executor: {stats['executor']}")
        print(f"SMOKE OK ({executor})")
    except Exception as exc:  # noqa: BLE001 - report and fail the job
        failures = 1
        print(f"SMOKE FAILED ({executor}): {type(exc).__name__}: {exc}",
              file=sys.stderr)
    finally:
        proc.terminate()
        try:
            proc.wait(10)
        except subprocess.TimeoutExpired:
            proc.kill()
        log = proc.stdout.read() if proc.stdout else ""
        if log:
            print(f"--- server log ({executor}) ---")
            print(log)
    return failures


def main() -> int:
    deadline = time.monotonic() + DEADLINE_SECONDS
    # Belt and braces: SIGALRM kills the whole script if assertions hang.
    if hasattr(signal, "SIGALRM"):
        signal.alarm(int(DEADLINE_SECONDS) + 5)

    failures = 0
    for executor in BACKENDS:
        failures += run_backend(executor, deadline)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
