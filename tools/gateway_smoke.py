#!/usr/bin/env python
"""CI smoke test for the sharded gateway: route, coalesce, kill, recover.

Starts ``repro gateway`` plus three ``repro serve --register`` worker
nodes — all real subprocesses on random free ports — then drives the
fleet over HTTP with :class:`repro.serve.ServiceClient`:

1. a burst of compress jobs through the gateway, one deliberately large
   so it is provably still executing when the fault lands;
2. ``SIGKILL`` of the node that owns the large job, mid-execution;
3. every job still completes, and the recomputed outputs are
   **bit-identical** to a serial run in this process;
4. the failover is visible in the gateway's ``/metrics``
   (``repro_gateway_requeued_total``, ``repro_gateway_node_failures_total``)
   and ``/stats`` fleet counts;
5. the killed job's **stitched trace** (``GET /trace/<id>`` on the
   gateway) tells the whole story: gateway routing spans naming the
   dead node, the ``failover_requeue`` evidence span, and the
   recovering node's queue/run/stage spans — one tree, one trace id.

The whole script enforces a hard deadline (default 120 s) and always
tears the fleet down, printing every process log on failure.

Run it locally with::

    PYTHONPATH=src python tools/gateway_smoke.py

Exit status is non-zero on any failure; the CI ``gateway-smoke`` job
runs exactly this under a matching external timeout.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DEADLINE_SECONDS = 120.0
N_NODES = 3

sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.api.execute import execute  # noqa: E402
from repro.api.plan import plan  # noqa: E402
from repro.api.request import CompressionRequest  # noqa: E402
from repro.serve import ServiceClient  # noqa: E402


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_until(predicate, deadline: float, message: str) -> None:
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise TimeoutError(f"timed out waiting for {message}")


def spawn(argv: list[str]) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def running_on(node_url: str) -> int:
    """Jobs currently executing on a node (0 if unreachable)."""
    try:
        return int(ServiceClient(node_url, timeout=5.0)
                   .stats()["jobs"]["running"])
    except Exception:  # noqa: BLE001 - a dead node is simply "not running"
        return 0


def metric_value(client: ServiceClient, prefix: str) -> float:
    for line in client.metrics_text().splitlines():
        if line.startswith(prefix):
            return float(line.rsplit(" ", 1)[1])
    raise KeyError(f"no metric sample starts with {prefix!r}")


def run_smoke(deadline: float) -> int:
    workdir = Path(tempfile.mkdtemp(prefix="repro-gw-smoke-"))

    # Inputs on disk + serial-run reference bytes: compress is a pure
    # function of the spec, so whatever node ends up executing a job
    # must reproduce these exactly.
    sizes = [2**18, 2**16, 2**16, 2**16]  # [0] is seconds of work
    specs: list[tuple[Path, bytes]] = []
    for i, size in enumerate(sizes):
        rng = np.random.default_rng(100 + i)
        data = rng.normal(size=size).astype(np.float32).cumsum()
        src = workdir / f"in{i}.npy"
        np.save(src, data)
        ref = workdir / f"ref{i}.frz"
        execute(plan(CompressionRequest(kind="compress", input=str(src),
                                        output=str(ref), error_bound=1e-3)))
        specs.append((src, ref.read_bytes()))

    gw_port = free_port()
    gw_url = f"http://127.0.0.1:{gw_port}"
    procs: dict[str, subprocess.Popen] = {}
    node_urls: dict[str, str] = {}
    failures = 0
    try:
        procs["gateway"] = spawn([
            "gateway", "--port", str(gw_port), "--heartbeat-interval", "0.25",
            "--dead-after", "1.5", "--check-interval", "0.1"])
        for i in range(N_NODES):
            port = free_port()
            node_urls[f"n{i}"] = f"http://127.0.0.1:{port}"
            procs[f"n{i}"] = spawn([
                "serve", "--port", str(port), "--workers", "1",
                "--executor", "thread", "--no-cache",
                "--register", gw_url, "--node-id", f"n{i}"])

        client = ServiceClient(gw_url, timeout=10.0)
        wait_until(lambda: _active(client) == N_NODES, deadline,
                   f"{N_NODES} registered nodes")
        print(f"fleet up: gateway {gw_url}, nodes "
              f"{', '.join(sorted(node_urls))}")

        # 1. the burst
        tickets = [
            client.submit(kind="compress", error_bound=1e-3,
                          input=str(src), output=str(workdir / f"out{i}.frz"))
            for i, (src, _) in enumerate(specs)
        ]
        victim = tickets[0]["node"]
        print(f"routed: {[t['node'] for t in tickets]}; victim {victim}")

        # 2. kill the owner of the large job only once it is provably
        #    mid-execution, so the failover is a genuine crash recovery.
        wait_until(lambda: running_on(node_urls[victim]) >= 1, deadline,
                   "victim mid-job")
        procs[victim].send_signal(signal.SIGKILL)
        procs[victim].wait(10)
        print(f"killed {victim} mid-job")

        # 3. zero jobs lost, bit-identical outputs
        for i, ticket in enumerate(tickets):
            result = client.result(ticket["job_id"], timeout=90.0)
            assert result["kind"] == "compress", result
            produced = (workdir / f"out{i}.frz").read_bytes()
            assert produced == specs[i][1], f"job {i} differs from serial run"
        final = client.status(tickets[0]["job_id"])
        assert final["state"] == "done", final
        assert final["node"] != victim, final
        assert final["failovers"] >= 1, final
        print(f"all {len(tickets)} jobs completed bit-identically; "
              f"job 0 failed over {victim} -> {final['node']}")

        # 4. the control plane saw it
        assert metric_value(client, "repro_gateway_node_failures_total") >= 1
        assert metric_value(client, "repro_gateway_requeued_total") >= 1
        assert metric_value(client, "repro_gateway_completed_total") == len(tickets)
        counts = client.stats()["fleet"]["counts"]
        assert counts["dead"] == 1 and counts["active"] == N_NODES - 1, counts
        print(f"metrics ok: fleet counts {counts}")

        # 5. the stitched trace narrates the failover end to end
        trace = client.trace(tickets[0]["job_id"])
        assert trace["trace_id"] == tickets[0]["trace_id"], trace
        assert trace["complete"], "job finished but trace says incomplete"
        names = {s["name"] for s in trace["spans"]}
        for expected in ("gateway_job", "route", "failover_requeue",
                         "job", "queue_wait", "run", "executor_dispatch",
                         "encode"):
            assert expected in names, f"missing {expected!r} in {sorted(names)}"
        routed_to = {s.get("attrs", {}).get("node") for s in trace["spans"]
                     if s["name"] in ("route", "failover_requeue")}
        assert victim in routed_to, \
            f"no routing span names the dead node {victim}: {routed_to}"
        span_nodes = {s.get("node_id") for s in trace["spans"]}
        assert final["node"] in span_nodes, \
            f"no spans from the recovering node {final['node']}: {span_nodes}"
        assert "gateway" in span_nodes, span_nodes
        print(f"trace ok: {len(trace['spans'])} spans stitched "
              f"(gateway + {final['node']}), failover via {victim} recorded")
        print("SMOKE OK (gateway)")
    except Exception as exc:  # noqa: BLE001 - report and fail the job
        failures = 1
        print(f"SMOKE FAILED (gateway): {type(exc).__name__}: {exc}",
              file=sys.stderr)
    finally:
        for proc in procs.values():
            if proc.poll() is None:
                proc.terminate()
        for name, proc in procs.items():
            try:
                proc.wait(10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(10)
            log = proc.stdout.read() if proc.stdout else ""
            if log and failures:
                print(f"--- {name} log ---")
                print(log)
    return failures


def _active(client: ServiceClient) -> int:
    try:
        return int(client.health().get("nodes_active", 0))
    except Exception:  # noqa: BLE001 - gateway still booting
        return 0


def main() -> int:
    deadline = time.monotonic() + DEADLINE_SECONDS
    # Belt and braces: SIGALRM kills the whole script if assertions hang.
    if hasattr(signal, "SIGALRM"):
        signal.alarm(int(DEADLINE_SECONDS) + 5)
    return 1 if run_smoke(deadline) else 0


if __name__ == "__main__":
    sys.exit(main())
