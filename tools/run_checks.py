#!/usr/bin/env python
"""CI entry point for the static-analysis suite (``repro check``).

Equivalent to ``PYTHONPATH=src python -m repro.cli check`` but
self-contained: fixes up ``sys.path`` so a bare checkout works.

    python tools/run_checks.py --strict

Exit codes: 0 clean, 1 new findings (or stale baseline under
``--strict``), 2 usage error.  See ``docs/STATIC_ANALYSIS.md``.
"""

import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.analysis.engine import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
