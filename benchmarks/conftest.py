"""Shared fixtures and report helpers for the benchmark harness.

Every ``bench_figXX``/``bench_tableX`` module regenerates one figure or
table from the paper's evaluation (Sec. VI); docs/BENCHMARKS.md records the
paper-vs-measured expectations.  Benchmarks print their series/rows through
:func:`report` so the output survives pytest's capture into
``bench_output.txt`` runs with ``-s`` or ``--capture=no`` disabled alike.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest

from repro.datasets import load_dataset


@lru_cache(maxsize=None)
def _dataset(name: str, size: str):
    return load_dataset(name, size)


@pytest.fixture(scope="session")
def hurricane_tiny():
    return _dataset("Hurricane", "tiny")


@pytest.fixture(scope="session")
def hurricane_small():
    return _dataset("Hurricane", "small")


@pytest.fixture(scope="session")
def nyx_small():
    return _dataset("NYX", "small")


@pytest.fixture(scope="session")
def cesm_tiny():
    return _dataset("CESM", "tiny")


@pytest.fixture(scope="session")
def hacc_tiny():
    return _dataset("HACC", "tiny")


@pytest.fixture(scope="session")
def exaalt_tiny():
    return _dataset("Exaalt", "tiny")


@pytest.fixture(scope="session")
def nyx_tiny():
    return _dataset("NYX", "tiny")


@pytest.fixture(scope="session")
def nyx_paper():
    return _dataset("NYX", "paper")


@pytest.fixture()
def report(capsys):
    """Print experiment output past pytest's capture."""

    def _print(*lines: str) -> None:
        with capsys.disabled():
            for line in lines:
                print(line)

    return _print


def maxerr(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.abs(a.astype(np.float64) - b.astype(np.float64)).max())
