"""Shared evaluation cache: fewer compressor calls on a combined workload.

FRaZ's cost model is the number of compressor evaluations (Fig. 6/7 count
iterations, not seconds), and a *tuning service* runs many searches over
the same data: feasibility pre-checks, FRaZ trainings at several target
ratios, and baseline comparisons — each of which re-compresses
``(data, compressor, bound)`` triples the others already paid for.

This bench runs that combined workload on a 2-field x 4-time-step dataset
with 4 regions per search, once without and once with a shared
:class:`~repro.cache.EvalCache`, and requires the cache to absorb at least
30% of the compressor calls.  The savings are structural, not incidental:

* the global optimizer's seed probes depend only on the bound interval,
  so every retraining at a new target re-probes them (cache hits);
* the feasibility sweep and the grid-search baseline walk the same
  geometric grid for every target;
* binary search's first bisections are target-independent.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.sweeps import feasible_ratio_range
from repro.cache import EvalCache
from repro.core.baselines import binary_search_ratio, grid_search_ratio
from repro.core.fields import tune_fields
from repro.sz.compressor import SZCompressor

TARGETS = (6.0, 8.0, 10.0)
REGIONS = 4
SWEEP_PROBES = 16


def _make_fields() -> dict[str, list[np.ndarray]]:
    """2 fields x 4 time-steps of drifting smooth-noise data."""
    fields = {}
    for name, seed in (("TEMP", 1), ("PRES", 2)):
        r = np.random.default_rng(seed)
        base = r.standard_normal((20, 20, 10)).astype(np.float32)
        drift = r.standard_normal((20, 20, 10)).astype(np.float32)
        fields[name] = [(base + 0.02 * t * drift).astype(np.float32) for t in range(4)]
    return fields


def _run_workload(cache: EvalCache | None) -> tuple[int, int]:
    """Run the combined workload; returns (compressor_calls, probes)."""
    sz = SZCompressor()
    fields = _make_fields()
    calls = 0
    probes = 0

    # Feasibility pre-check per field (Fig. 7's question, answered cheaply).
    for series in fields.values():
        feasible_ratio_range(sz, series[0], probes=SWEEP_PROBES, cache=cache)
        calls += SWEEP_PROBES if cache is None else 0
        probes += SWEEP_PROBES
    if cache is not None:
        calls = cache.stats.misses

    for target in TARGETS:
        res = tune_fields(sz, fields, target, regions=REGIONS, seed=0, cache=cache)
        calls += res.total_compressor_calls
        probes += res.total_evaluations
        # Baseline comparison on each field's training step, as the
        # paper's evaluation does (Sec. VI-B).
        for series in fields.values():
            g = grid_search_ratio(sz, series[0], target, points=SWEEP_PROBES, cache=cache)
            b = binary_search_ratio(sz, series[0], target, max_calls=SWEEP_PROBES, cache=cache)
            calls += g.compressor_calls + b.compressor_calls
            probes += g.evaluations + b.evaluations
    return calls, probes


def test_cache_reuse_reduces_compressor_calls(benchmark, report):
    uncached_calls, uncached_probes = _run_workload(None)

    cache = EvalCache()
    cached_calls, cached_probes = benchmark.pedantic(
        lambda: _run_workload(cache), rounds=1, iterations=1
    )

    saving = 1.0 - cached_calls / uncached_calls
    report(
        "",
        "== Shared-cache reuse: 2 fields x 4 steps x 4 regions, "
        f"targets {TARGETS}, baselines + feasibility sweeps ==",
        f"probes issued      : {uncached_probes} uncached / {cached_probes} cached",
        f"compressor calls   : {uncached_calls} uncached / {cached_calls} cached",
        f"calls saved        : {saving:.1%} (acceptance floor: 30%)",
        f"cache stats        : {cache.stats.as_dict()}",
    )
    # Equal work was requested either way; the cache only changes who pays.
    assert cached_probes == uncached_probes
    assert cache.stats.hits > 0
    assert saving >= 0.30


def test_cached_results_identical_to_uncached(report):
    """The cache must be invisible in results: same bounds, same ratios."""
    sz = SZCompressor()
    fields = _make_fields()
    plain = tune_fields(sz, fields, 8.0, regions=REGIONS, seed=0)
    cached = tune_fields(sz, fields, 8.0, regions=REGIONS, seed=0, cache=EvalCache())
    for name in fields:
        for s_plain, s_cached in zip(plain.fields[name].steps, cached.fields[name].steps):
            assert s_plain.error_bound == s_cached.error_bound
            assert s_plain.ratio == s_cached.ratio
    report("cached/uncached tuning results identical: OK")


def test_training_result_reports_hit_miss_counts():
    """TrainingResult surfaces the cache's hit/miss split (acceptance)."""
    sz = SZCompressor()
    fields = _make_fields()
    cache = EvalCache()
    first = tune_fields(sz, fields, 8.0, regions=REGIONS, seed=0, cache=cache)
    second = tune_fields(sz, fields, 8.0, regions=REGIONS, seed=0, cache=cache)
    for res in (first, second):
        for ts in res.fields.values():
            for step in ts.steps:
                assert step.cache_hits + step.cache_misses == step.evaluations
    # An identical rerun is answered entirely from cache.
    assert second.total_compressor_calls == 0
    assert second.total_cache_hits == second.total_evaluations
