"""Sec. III's bandwidth tradeoff: FRaZ's control loop vs ZFP's fixed-rate mode.

Paper: "Since our framework utilizes a control loop to bound the
compression ratio, it may suffer a lower bandwidth than ZFP's fixed-rate
mode to a certain extent.  The tradeoff for this lower bandwidth is
compressed data of far higher quality for the same compression ratio."

This bench measures both sides of that sentence on a time series: total
compression throughput (MB/s of input consumed, tuning included) and PSNR
at matched ratio, for (a) ZFP fixed-rate and (b) FRaZ-tuned ZFP accuracy
mode with time-step reuse.  Reuse is what keeps the control loop's cost
near one compression per step after the first.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.online import OnlineFRaZ
from repro.metrics import psnr
from repro.pressio import make_compressor


def test_bandwidth_vs_quality(benchmark, report, hurricane_small):
    series = hurricane_small.fields["TCf"].steps[:10]
    target = 8.0
    total_mb = sum(s.nbytes for s in series) / 1e6

    def run():
        # Fixed-rate: stateless, one pass.
        rate_comp = make_compressor("zfp-rate", error_bound=32.0 / target)
        t0 = time.perf_counter()
        rate_payloads = [rate_comp.compress(s) for s in series]
        rate_seconds = time.perf_counter() - t0
        rate_psnr = float(np.mean([
            psnr(s, rate_comp.decompress(p)) for s, p in zip(series, rate_payloads)
        ]))
        rate_ratio = float(np.mean([p.ratio for p in rate_payloads]))

        # FRaZ online: control loop with reuse.
        tuner = OnlineFRaZ(compressor="zfp", target_ratio=target, tolerance=0.15)
        t0 = time.perf_counter()
        results = [tuner.push(s) for s in series]
        fraz_seconds = time.perf_counter() - t0
        fraz_psnr = float(np.mean([
            psnr(s, tuner.decompress(r.payload)) for s, r in zip(series, results)
        ]))
        fraz_ratio = float(np.mean([r.ratio for r in results]))
        return (rate_seconds, rate_psnr, rate_ratio,
                fraz_seconds, fraz_psnr, fraz_ratio, tuner.retrain_count)

    (rate_s, rate_psnr, rate_ratio,
     fraz_s, fraz_psnr, fraz_ratio, retrains) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    report(
        "",
        "== Sec. III tradeoff: throughput vs quality at matched ratio ==",
        f"{'method':<18} {'MB/s':>8} {'mean CR':>8} {'mean PSNR':>10}",
        f"{'zfp fixed-rate':<18} {total_mb / rate_s:>8.1f} {rate_ratio:>8.2f} "
        f"{rate_psnr:>10.2f}",
        f"{'FRaZ(zfp) online':<18} {total_mb / fraz_s:>8.1f} {fraz_ratio:>8.2f} "
        f"{fraz_psnr:>10.2f}",
        f"(FRaZ retrained on {retrains}/{len(series)} steps)",
    )
    # Both sides of the paper's sentence:
    assert fraz_s >= rate_s, "the control loop costs bandwidth"
    assert fraz_psnr > rate_psnr, "...and buys quality at the same ratio"
    # Reuse keeps the overhead bounded: not worse than ~an order of
    # magnitude at steady state.
    assert fraz_s < rate_s * 40
