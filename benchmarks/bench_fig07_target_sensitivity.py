"""Figure 7: runtime sensitivity to the target compression ratio.

Paper result (rho_t swept 2..29 over all Hurricane-CLOUD time-steps):
infeasible targets — below SZ's effective ratio floor (~7.5 in the paper)
or in gaps of the achievable set — exhaust the iteration budget on every
step and cost ~10x more than feasible targets, where early termination and
time-step reuse kick in.
"""

from __future__ import annotations

import numpy as np

from repro.core.fields import tune_time_series
from repro.sz.compressor import SZCompressor


def test_fig07_target_sweep(benchmark, report, hurricane_small):
    series = hurricane_small.fields["CLOUDf"].steps[:8]
    targets = [2, 4, 6, 8, 10, 14, 18, 24, 29]

    def run():
        rows = []
        for rho_t in targets:
            res = tune_time_series(
                SZCompressor(), series, float(rho_t), tolerance=0.1,
                regions=6, max_calls_per_region=10, seed=0,
            )
            rows.append(
                (
                    rho_t,
                    res.total_wall_seconds,
                    sum(s.compress_seconds for s in res.steps),
                    res.total_evaluations,
                    res.converged_fraction,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    report(
        "",
        "== Fig. 7: sensitivity to rho_t (paper: infeasible targets ~10x "
        "slower; floor at rho~7.5) ==",
        f"{'rho_t':>6} {'total (s)':>10} {'compress (s)':>13} "
        f"{'evals':>6} {'converged':>10}",
    )
    for rho_t, total, comp, evals, conv in rows:
        report(f"{rho_t:6.1f} {total:10.3f} {comp:13.3f} {evals:6d} {conv:10.2f}")

    evals = {r[0]: r[3] for r in rows}
    conv = {r[0]: r[4] for r in rows}

    # The SZ ratio floor makes very low targets infeasible & expensive.
    floor_targets = [t for t in targets if conv[t] < 0.5]
    feasible_targets = [t for t in targets if conv[t] > 0.9]
    assert feasible_targets, "some targets should be feasible"
    if floor_targets:
        worst_feasible = max(evals[t] for t in feasible_targets)
        best_infeasible = min(evals[t] for t in floor_targets)
        assert best_infeasible > worst_feasible, (
            "infeasible targets should cost more evaluations"
        )
