"""Figure 3: non-monotonic compression-ratio vs error-bound relation.

Paper result (SZ on Hurricane QCLOUDf.log10): the ratio/bound curve is
globally increasing but locally *spiky* — larger bounds can yield smaller
ratios, because the Lorenzo predictor feeds on decompressed values and tiny
bound changes reshape the Huffman tree and the dictionary stage's matches.
This is the property that rules out bisection and motivates FRaZ's global
optimizer.
"""

from __future__ import annotations

import numpy as np

from repro.sz.compressor import SZCompressor


def _ratio_curve(data, bounds):
    return np.array(
        [SZCompressor(error_bound=float(e)).compress(data).ratio for e in bounds]
    )


def test_fig03_nonmonotonic_curve(benchmark, report, hurricane_small):
    data = hurricane_small.fields["QCLOUDf.log10"].steps[0]
    span = float(data.max() - data.min())
    bounds = np.linspace(span * 1e-4, span * 0.09, 60)

    ratios = benchmark.pedantic(
        lambda: _ratio_curve(data, bounds), rounds=1, iterations=1
    )

    report(
        "",
        "== Fig. 3: SZ ratio vs error bound (Hurricane QCLOUDf.log10 analog) ==",
        f"{'error bound':>12}  {'ratio':>8}",
    )
    for e, r in zip(bounds, ratios):
        report(f"{e:12.5f}  {r:8.3f}")

    decreases = int((np.diff(ratios) < -1e-9).sum())
    report(f"local decreases along the sweep: {decreases}/{len(bounds) - 1}")

    # Globally increasing ...
    assert ratios[-1] > ratios[0]
    # ... but locally non-monotonic (the figure's point).
    assert decreases >= 1, "expected at least one local ratio decrease"
