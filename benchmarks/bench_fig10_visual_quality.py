"""Figure 10: visual quality at a fixed compression ratio (NYX temperature).

Paper caption (512^3 NYX temperature, CR ~= 85:1): SZ(FRaZ) PSNR=80.4 /
SSIM=0.999, ZFP(FRaZ) 76 / 0.997, MGARD(FRaZ) 70 / 0.977, ZFP(fixed-rate)
56 / 0.986 — i.e. SZ best, MGARD the worst of the error-bounded trio, and
fixed-rate far behind the FRaZ-tuned error-bounded modes.

Scale substitution (see docs/BENCHMARKS.md): our synthetic NYX is
48^3, so each voxel carries ~1200x more of the field's structure than in
the 512^3 original; a literal 85:1 would destroy it.  The
resolution-equivalent stress point is ~10:1 here, where both the ordering
*and* the PSNR levels of the paper's caption reproduce quantitatively
(SZ ~80 dB, ZFP/MGARD ~70 dB, fixed-rate behind by >10 dB).
"""

from __future__ import annotations

from repro.core.training import train
from repro.pressio import evaluate, make_compressor

_TARGET = 10.0  # resolution-equivalent analog of the paper's 85:1


def test_fig10_quality_at_fixed_ratio(benchmark, report, nyx_paper):
    data = nyx_paper.fields["temperature"].steps[0]

    def run():
        rows = {}
        for comp_name, label in (
            ("sz", "SZ(FRaZ)"), ("zfp", "ZFP(FRaZ)"), ("mgard", "MGARD(FRaZ)"),
        ):
            res = train(make_compressor(comp_name), data, _TARGET,
                        tolerance=0.1, regions=4, max_calls_per_region=12, seed=0)
            rows[label] = evaluate(
                make_compressor(comp_name, error_bound=res.error_bound), data
            )
        rows["ZFP(fixed-rate)"] = evaluate(
            make_compressor("zfp-rate", error_bound=32.0 / _TARGET), data
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    report(
        "",
        f"== Fig. 10: NYX temperature at CR ~= {_TARGET:.0f}:1 "
        "(paper at its scale: SZ 80.4 > ZFP 76 > MGARD 70 dB; "
        "fixed-rate 56 dB) ==",
        f"{'compressor':<16} {'CR':>7} {'PSNR':>7} {'SSIM':>7} {'ACF(err)':>9}",
    )
    for label, rec in rows.items():
        report(
            f"{label:<16} {rec.ratio:7.1f} {rec.psnr:7.2f} {rec.ssim:7.4f} "
            f"{rec.acf_error:9.3f}"
        )

    # All four land near the target ratio.
    for label, rec in rows.items():
        assert 0.5 * _TARGET <= rec.ratio <= 2.0 * _TARGET, (
            f"{label} ratio {rec.ratio} too far from {_TARGET}"
        )
    # Quality orderings from the caption.
    assert rows["SZ(FRaZ)"].psnr > rows["ZFP(FRaZ)"].psnr
    assert rows["ZFP(FRaZ)"].psnr > rows["ZFP(fixed-rate)"].psnr
    assert rows["MGARD(FRaZ)"].psnr > rows["ZFP(fixed-rate)"].psnr
    assert rows["SZ(FRaZ)"].ssim >= rows["ZFP(fixed-rate)"].ssim
