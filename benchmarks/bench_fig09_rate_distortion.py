"""Figure 9: rate distortion of SZ(FRaZ), ZFP(FRaZ), ZFP(fixed-rate) and
MGARD(FRaZ) on all five datasets.

Paper results: (a) Hurricane TCf, (b) NYX temperature, (c) CESM CLDHGH,
(d) HACC x/y/z, (e) EXAALT x/y/z.  ZFP(FRaZ) consistently beats
ZFP(fixed-rate); SZ(FRaZ) has the best rate distortion in most cases;
MGARD is absent from (d)/(e) because it does not support 1D data.
"""

from __future__ import annotations

import numpy as np

from repro.core.training import train
from repro.metrics import psnr
from repro.pressio import make_compressor

# Per-panel bit-rate grids, matching the x-ranges of the paper's panels:
# 3D fields sweep low rates; the 1D particle datasets only express low
# ratios (Fig. 9 d/e reach bit rate 14-18), and our ZFP's 24-bit block
# header makes sub-2-bit rates degenerate in 1D/2D (documented overhead of
# the sectioned layout — see docs/BENCHMARKS.md).
_PANELS = [
    ("Hurricane", "TCf", "hurricane_tiny", [1.0, 2.0, 4.0, 8.0]),
    ("NYX", "temperature", "nyx_tiny", [1.0, 2.0, 4.0, 8.0]),
    ("CESM", "CLDHGH", "cesm_tiny", [2.0, 4.0, 8.0, 12.0]),
    ("HACC", "x", "hacc_tiny", [12.0, 16.0, 20.0, 26.0]),
    ("Exaalt", "x", "exaalt_tiny", [10.0, 12.0, 16.0, 24.0]),
]


def _fraz_point(comp_name: str, data: np.ndarray, target_ratio: float):
    """FRaZ-tuned (bit_rate, psnr) or None when infeasible/unsupported."""
    comp = make_compressor(comp_name)
    if not comp.supports(data):
        return None
    res = train(comp, data, target_ratio, tolerance=0.15, regions=4,
                max_calls_per_region=10, seed=0)
    tuned = comp.with_error_bound(res.error_bound)
    field = tuned.compress(data)
    recon = tuned.decompress(field)
    return 8.0 * field.nbytes / data.size, psnr(data, recon), res.feasible


def _rate_point(data: np.ndarray, rate: float):
    comp = make_compressor("zfp-rate", error_bound=rate)
    field = comp.compress(data)
    recon = comp.decompress(field)
    return 8.0 * field.nbytes / data.size, psnr(data, recon)


def _panel(data: np.ndarray, bit_rates: list[float]):
    itemsize_bits = data.dtype.itemsize * 8
    rows: dict[str, list[tuple[float, float]]] = {
        "SZ(FRaZ)": [], "ZFP(FRaZ)": [], "ZFP(fixed-rate)": [], "MGARD(FRaZ)": [],
    }
    for bit_rate in bit_rates:
        target = itemsize_bits / bit_rate
        for comp_name, label in (
            ("sz", "SZ(FRaZ)"), ("zfp", "ZFP(FRaZ)"), ("mgard", "MGARD(FRaZ)"),
        ):
            point = _fraz_point(comp_name, data, target)
            if point is not None and point[2]:
                rows[label].append((point[0], point[1]))
        rows["ZFP(fixed-rate)"].append(_rate_point(data, bit_rate))
    return rows


def test_fig09_rate_distortion(
    benchmark, report, hurricane_tiny, nyx_tiny, cesm_tiny, hacc_tiny, exaalt_tiny
):
    datasets = {
        "hurricane_tiny": hurricane_tiny,
        "nyx_tiny": nyx_tiny,
        "cesm_tiny": cesm_tiny,
        "hacc_tiny": hacc_tiny,
        "exaalt_tiny": exaalt_tiny,
    }

    def run():
        out = {}
        for ds_name, field_name, fixture, bit_rates in _PANELS:
            data = datasets[fixture].fields[field_name].steps[0]
            out[(ds_name, field_name)] = (_panel(data, bit_rates), data.ndim)
        return out

    panels = benchmark.pedantic(run, rounds=1, iterations=1)

    report("", "== Fig. 9: rate distortion, PSNR (dB) vs bit rate ==")
    for (ds_name, field_name), (rows, ndim) in panels.items():
        report(f"-- {ds_name}({field_name}) --")
        for label, series in rows.items():
            if not series:
                report(f"  {label:<16} (no feasible points)")
                continue
            pts = "  ".join(f"({br:5.2f}, {ps:6.2f})" for br, ps in sorted(series))
            report(f"  {label:<16} {pts}")

        # MGARD must be absent on 1D datasets (paper: panels d/e).
        if ndim == 1:
            assert not rows["MGARD(FRaZ)"], "MGARD cannot appear on 1D data"
        # Every panel has at least one FRaZ-tuned SZ point.
        assert rows["SZ(FRaZ)"], f"{ds_name}: SZ(FRaZ) produced no points"

        # ZFP(FRaZ) dominates ZFP(fixed-rate) at comparable bit rates.
        fraz_pts = sorted(rows["ZFP(FRaZ)"])
        rate_pts = sorted(rows["ZFP(fixed-rate)"])
        if len(fraz_pts) >= 2:
            fr_br = np.array([p[0] for p in fraz_pts])
            fr_ps = np.array([p[1] for p in fraz_pts])
            wins = total = 0
            for br, ps in rate_pts:
                if fr_br[0] <= br <= fr_br[-1]:
                    total += 1
                    wins += float(np.interp(br, fr_br, fr_ps)) > ps
            if total:
                assert wins >= total * 0.5, (
                    f"{ds_name}: ZFP(FRaZ) should win at most bit rates "
                    f"({wins}/{total})"
                )
