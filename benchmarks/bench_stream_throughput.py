"""Streamed vs in-memory compression: throughput and peak memory.

The streaming layer exists to trade *nothing* for memory: on data that
fits in memory its throughput must stay within 20% of the in-memory path
(the chunked pipeline adds only container framing and per-chunk planning
on top of the same compressor work), while on data larger than the
``max_memory`` cap its peak traced allocation must stay under the cap the
in-memory path blows straight through.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_stream_throughput.py -q
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np

from repro.pressio.registry import make_compressor
from repro.stream import stream_compress, stream_decompress

BOUND = 1e-3
ACCEPTANCE_FLOOR = 0.80  # streamed >= 80% of in-memory MB/s


def _field(shape, dtype=np.float32):
    axes = np.meshgrid(*(np.linspace(0, 11, s) for s in shape), indexing="ij")
    return sum(np.sin(a + i) for i, a in enumerate(axes)).astype(dtype)


def _best_of(n, fn):
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_streamed_throughput_within_20pct_of_in_memory(tmp_path, report):
    """Acceptance: streamed MB/s >= 80% of in-memory on fitting data."""
    data = _field((128, 96, 32))  # 1.5 MiB, fits comfortably
    src = tmp_path / "f.npy"
    np.save(src, data)
    comp = make_compressor("sz", error_bound=BOUND)
    comp.compress(data)  # warm plans/caches for both paths

    t_mem = _best_of(2, lambda: comp.compress(data))
    t_stream = _best_of(
        2,
        lambda: stream_compress(src, tmp_path / "f.frzs", error_bound=BOUND,
                                chunk_shape=(32, 96, 32)),
    )
    mb = data.nbytes / 1e6
    mem_mbs, stream_mbs = mb / t_mem, mb / t_stream
    relative = stream_mbs / mem_mbs
    report(
        "",
        "== Streamed vs in-memory throughput (1.5 MiB float32, fits in memory) ==",
        f"in-memory : {mem_mbs:6.2f} MB/s",
        f"streamed  : {stream_mbs:6.2f} MB/s ({relative:.0%} of in-memory; "
        f"floor {ACCEPTANCE_FLOOR:.0%})",
    )
    assert relative >= ACCEPTANCE_FLOOR


def test_streamed_peak_memory_under_cap_in_memory_is_not(tmp_path, report):
    """4 MiB dataset, 1 MiB cap: only the streamed path respects it."""
    cap = 1 << 20
    data = _field((128, 64, 64), dtype=np.float64)  # 4 MiB
    src = tmp_path / "big.npy"
    np.save(src, data)
    comp = make_compressor("sz", error_bound=BOUND)

    # Warm both paths so one-time costs (imports, wavefront plans) don't
    # pollute the traced peaks.
    stream_compress(src, tmp_path / "w.frzs", error_bound=BOUND, max_memory=cap)
    comp.compress(data)

    tracemalloc.start()
    res = stream_compress(src, tmp_path / "s.frzs", error_bound=BOUND,
                          max_memory=cap)
    _, peak_stream = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    comp.compress(np.load(src))  # the in-memory path must load it all
    _, peak_mem = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    report(
        "",
        f"== Peak traced allocation, 4 MiB dataset, cap {cap >> 20} MiB ==",
        f"in-memory : {peak_mem / 1e6:6.2f} MB peak",
        f"streamed  : {peak_stream / 1e6:6.2f} MB peak "
        f"({res.n_chunks} chunks of {'x'.join(map(str, res.chunk_shape))})",
        f"ratio     : {res.ratio:.2f}:1 at {res.mb_per_second:.2f} MB/s",
    )
    assert peak_stream < cap
    assert peak_mem > cap  # the comparison is meaningful

    recon = stream_decompress(tmp_path / "s.frzs")
    assert float(np.abs(recon - data).max()) <= BOUND * 1.0000001


def test_streamed_decompress_throughput(tmp_path, report):
    """Decompression symmetry: streamed reassembly vs in-memory decode."""
    data = _field((96, 96, 24))
    src = tmp_path / "f.npy"
    np.save(src, data)
    comp = make_compressor("sz", error_bound=BOUND)
    payload = comp.compress(data)
    out = tmp_path / "f.frzs"
    stream_compress(src, out, error_bound=BOUND, chunk_shape=(24, 96, 24))
    comp.decompress(payload)  # warm

    t_mem = _best_of(2, lambda: comp.decompress(payload))
    t_stream = _best_of(2, lambda: stream_decompress(out))
    mb = data.nbytes / 1e6
    report(
        "",
        "== Streamed vs in-memory decompression ==",
        f"in-memory : {mb / t_mem:6.2f} MB/s",
        f"streamed  : {mb / t_stream:6.2f} MB/s",
    )
