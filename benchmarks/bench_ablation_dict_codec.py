"""Ablation: SZ's dictionary stage — DEFLATE backend vs from-scratch LZ77
vs no dictionary stage at all.

The paper's SZ links Gzip/Zstd for stage 4; this package substitutes stdlib
DEFLATE by default and ships a from-scratch LZ77 as the reference
implementation (docs/COMPRESSORS.md).  This ablation quantifies what the stage buys (ratio) and
what each backend costs (time), plus the effect of removing it — the
dictionary stage is also implicated in the Fig. 3 non-monotonicity.
"""

from __future__ import annotations

import time

from repro.sz.compressor import SZCompressor


def test_ablation_dictionary_stage(benchmark, report, hurricane_small):
    data = hurricane_small.fields["CLOUDf"].steps[0]
    eb = 1e-2

    def run():
        rows = {}
        for label, codec in (("zlib", "zlib"), ("lz77", "lz77")):
            comp = SZCompressor(error_bound=eb, dict_codec=codec)
            t0 = time.perf_counter()
            payload = comp.compress(data)
            seconds = time.perf_counter() - t0
            recon = comp.decompress(payload)
            rows[label] = (payload.ratio, seconds, recon)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "",
        "== Ablation: SZ dictionary stage backend ==",
        f"{'backend':<8} {'ratio':>8} {'compress (s)':>13}",
    )
    for label, (ratio, seconds, _) in rows.items():
        report(f"{label:<8} {ratio:>8.3f} {seconds:>13.4f}")

    # Both backends are lossless: identical reconstruction.
    import numpy as np

    assert (rows["zlib"][2] == rows["lz77"][2]).all()
    # Both compress the field meaningfully.
    assert rows["zlib"][0] > 2.0 and rows["lz77"][0] > 2.0
    # DEFLATE is the speed default.
    assert rows["zlib"][1] <= rows["lz77"][1] * 2.0
