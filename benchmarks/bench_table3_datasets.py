"""Table III: dataset descriptions, paper vs the synthetic analogs.

The analogs match the paper's dimensionality and field counts exactly and
its time-step counts at the ``paper`` scale; sizes are reduced (the
originals total ~150 GB, unavailable offline).
"""

from __future__ import annotations

from repro.datasets import DATASET_NAMES, dataset_summaries, load_dataset
from repro.datasets.registry import PAPER_TABLE3


def test_table3_dataset_inventory(benchmark, report):
    table = benchmark.pedantic(lambda: dataset_summaries("small"), rounds=1, iterations=1)
    report("", "== Table III analog: dataset descriptions (size='small') ==", table)
    report("", "paper originals for comparison:")
    for name, meta in PAPER_TABLE3.items():
        report(
            f"{name:<10} {meta['domain']:<15} {meta['steps']:>5} "
            f"{meta['dim']:>3}D {meta['fields']:>7} {meta['size']:>12}"
        )

    # Structural fidelity at the 'paper' scale: dim, fields, steps match.
    for name in DATASET_NAMES:
        ds = load_dataset(name, "paper")
        meta = PAPER_TABLE3[name]
        assert ds.ndim == meta["dim"], name
        assert ds.n_fields == meta["fields"], name
        assert ds.n_steps == meta["steps"], name
