"""Extension bench: predictor generations and error-control modes under FRaZ.

The calibration context notes SZ3 (interpolation prediction) and pw-rel
ratio workflows exist in the ecosystem; this bench shows the black-box
framework drives all of them without modification — the genericity claim
at the heart of the paper — and records their rate-distortion relationship:

* ``sz`` (SZ2 block hybrid) vs ``sz-interp`` (SZ3 interpolation) on a
  smooth 3D field across bounds;
* ``sz-pwrel`` on magnitude-spanning 1D data where absolute bounds fail;
* FRaZ fixed-ratio searches over every registered abs-mode compressor.
"""

from __future__ import annotations

import numpy as np

from repro.core.training import train
from repro.metrics import psnr
from repro.pressio import make_compressor


def test_predictor_generations_rate_distortion(benchmark, report, nyx_small):
    data = nyx_small.fields["temperature"].steps[0]
    span = float(data.max() - data.min())
    bounds = np.geomspace(span * 1e-6, span * 1e-2, 8)

    def run():
        rows = {}
        for name in ("sz", "sz-interp"):
            series = []
            for eb in bounds:
                comp = make_compressor(name, error_bound=float(eb))
                payload = comp.compress(data)
                recon = comp.decompress(payload)
                series.append((8.0 * payload.nbytes / data.size, psnr(data, recon)))
            rows[name] = series
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("", "== Extension: SZ2 block hybrid vs SZ3 interpolation "
           "(NYX temperature) ==")
    for name, series in rows.items():
        pts = "  ".join(f"({br:5.2f}, {ps:6.2f})" for br, ps in sorted(series))
        report(f"  {name:<10} {pts}")

    # At the loosest bound (lowest bit rate) interpolation matches or beats
    # the block hybrid on this smooth field.
    sz_low = min(rows["sz"], key=lambda p: p[0])
    si_low = min(rows["sz-interp"], key=lambda p: p[0])
    assert si_low[0] <= sz_low[0] * 1.2


def test_fraz_generic_over_all_abs_compressors(benchmark, report, nyx_small):
    """One search loop, every error-bounded backend — zero special-casing."""
    data = nyx_small.fields["temperature"].steps[0]
    target = 10.0
    backends = ["sz", "sz-interp", "zfp", "mgard"]

    def run():
        out = {}
        for name in backends:
            comp = make_compressor(name)
            res = train(comp, data, target, tolerance=0.15, regions=4,
                        max_calls_per_region=10, seed=0)
            out[name] = res
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    report("", f"== Extension: FRaZ across every abs-mode backend "
           f"(rho_t={target}) ==",
           f"{'backend':<10} {'ratio':>8} {'feasible':>9} {'evals':>6}")
    for name, res in out.items():
        report(f"{name:<10} {res.ratio:>8.2f} {str(res.feasible):>9} "
               f"{res.evaluations:>6}")
    feasible = [name for name, res in out.items() if res.feasible]
    assert len(feasible) >= 3, f"most backends should converge, got {feasible}"


def test_pwrel_on_multiscale_particles(benchmark, report, hacc_tiny):
    """Point-wise relative bounds on HACC-style data (the use case the
    mode exists for)."""
    data = hacc_tiny.fields["vx"].steps[0]

    def run():
        comp = make_compressor("sz-pwrel", error_bound=1e-2)
        payload = comp.compress(data)
        recon = comp.decompress(payload)
        nz = np.abs(data) > 1e-35
        rel = np.abs(
            recon.astype(np.float64)[nz] - data.astype(np.float64)[nz]
        ) / np.abs(data.astype(np.float64)[nz])
        return payload.ratio, float(rel.max())

    ratio, max_rel = benchmark.pedantic(run, rounds=1, iterations=1)
    report("", "== Extension: sz-pwrel on HACC velocities ==",
           f"ratio {ratio:.2f}:1, max pointwise relative error {max_rel:.3e} "
           "(bound 1e-2)")
    assert max_rel <= 1e-2
    assert ratio > 1.0
