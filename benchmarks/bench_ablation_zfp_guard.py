"""Ablation: ZFP accuracy mode's guard bits vs verify-and-patch load.

``GUARD_BITS_PER_DIM = 1`` was fixed empirically: fewer guard bits
keep more ratio but push more points past the tolerance, all of which the
patch section must then store verbatim.  This bench regenerates that
tradeoff so the constant stays auditable.
"""

from __future__ import annotations

import numpy as np

import repro.zfp.compressor as zfp_mod
from repro.codecs.container import Container


def test_ablation_guard_bits(benchmark, report, hurricane_small):
    data = hurricane_small.fields["TCf"].steps[0]
    eb = float(data.max() - data.min()) * 1e-3

    def run():
        rows = {}
        original = zfp_mod.GUARD_BITS_PER_DIM
        try:
            for guard in (0, 1, 2, 3):
                zfp_mod.GUARD_BITS_PER_DIM = guard
                comp = zfp_mod.ZFPCompressor(error_bound=eb)
                payload = comp.compress(data)
                ct = Container.frombytes(payload.payload)
                n_patch = len(ct.get("patch_val")) // data.dtype.itemsize
                recon = comp.decompress(payload)
                err = float(
                    np.abs(recon.astype(np.float64) - data.astype(np.float64)).max()
                )
                rows[guard] = (payload.ratio, n_patch / data.size, err)
        finally:
            zfp_mod.GUARD_BITS_PER_DIM = original
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "",
        "== Ablation: ZFP guard bits per dimension (default 1) ==",
        f"{'guard':>6} {'ratio':>8} {'patched %':>10} {'max err':>11}",
    )
    for guard, (ratio, patch_frac, err) in rows.items():
        report(f"{guard:>6} {ratio:>8.3f} {patch_frac * 100:>9.2f}% {err:>11.3e}")

    # The bound holds at every guard level (patching is the backstop)...
    for guard, (_, _, err) in rows.items():
        assert err <= eb
    # ...and more guard bits mean fewer patched points.
    fracs = [rows[g][1] for g in (0, 1, 2, 3)]
    assert fracs[0] >= fracs[1] >= fracs[2] >= fracs[3]
