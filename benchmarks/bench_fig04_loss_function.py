"""Figure 4: the autotuning loss function on a step-like ratio curve.

The paper illustrates how a staircase ratio/bound relation (typical of
ZFP's accuracy mode) maps through the clamped-square loss into a landscape
whose acceptable region the optimizer can hit.  This bench regenerates both
panels: the measured ZFP ratio staircase and the corresponding
distance-from-objective values, and verifies the two claims the figure
encodes — (a) the ratio curve is a step function (few distinct values), and
(b) a target on a step is *feasible* while a target between steps is
*infeasible* yet FRaZ still returns the closest step.
"""

from __future__ import annotations

import numpy as np

from repro.core.loss import clamped_square_loss
from repro.core.training import train
from repro.pressio.closures import RatioFunction
from repro.zfp.compressor import ZFPCompressor


def test_fig04_loss_landscape(benchmark, report, hurricane_small):
    data = hurricane_small.fields["TCf"].steps[0]
    span = float(data.max() - data.min())
    bounds = np.geomspace(span * 1e-5, span, 48)

    def run():
        rf = RatioFunction(ZFPCompressor(), data)
        ratios = np.array([rf(float(e)) for e in bounds])
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    distinct = np.unique(np.round(np.log(ratios) * 50).astype(int)) * 1.0
    distinct = np.exp(distinct / 50)  # ratio levels at 2% granularity

    target = 15.0
    loss = clamped_square_loss(lambda e: float(np.interp(e, bounds, ratios)), target)
    losses = np.array([loss(float(e)) for e in bounds])

    report(
        "",
        "== Fig. 4: ZFP(accuracy) ratio staircase and clamped-square loss ==",
        f"{'bound':>12} {'ratio':>9} {'loss(target=15)':>16}",
    )
    for e, r, l in zip(bounds[::4], ratios[::4], losses[::4]):
        report(f"{e:12.5f} {r:9.3f} {l:16.3f}")
    report(
        f"distinct ratio levels over {len(bounds)} probed bounds: {distinct.size}"
    )

    # (a) Step function: within a power-of-two bound bracket the coded
    # planes are identical (only verify-and-patch bytes drift), so the
    # ratio is near-constant; crossing a bracket makes it jump.  At 2%
    # granularity the curve collapses to far fewer levels than probes.
    assert distinct.size < len(bounds) * 0.7
    brackets = np.floor(np.log2(bounds))
    same = [
        abs(ratios[i + 1] - ratios[i]) / ratios[i]
        for i in range(len(bounds) - 1)
        if brackets[i + 1] == brackets[i]
    ]
    assert same and float(np.median(same)) < 0.05

    # (b) Feasible vs infeasible targets behave as the figure describes.
    on_step = float(distinct[np.argmin(np.abs(distinct - 10.0))])
    feasible = train(ZFPCompressor(), data, on_step, tolerance=0.1,
                     regions=4, seed=0)
    assert feasible.feasible

    # A target in a gap between consecutive steps (if one is wide enough).
    gaps = np.diff(distinct)
    wide = np.argmax(gaps / distinct[:-1])
    lo_step, hi_step = float(distinct[wide]), float(distinct[wide + 1])
    if hi_step / lo_step > 1.5:
        mid = float(np.sqrt(lo_step * hi_step))
        tol = min(0.05, (hi_step / mid - 1) * 0.4, (1 - lo_step / mid) * 0.4)
        infeasible = train(ZFPCompressor(), data, mid, tolerance=tol,
                           regions=4, max_calls_per_region=8, seed=0)
        report(
            f"gap target rho_t={mid:.2f} (steps {lo_step:.2f}/{hi_step:.2f}): "
            f"feasible={infeasible.feasible}, closest ratio={infeasible.ratio:.2f}"
        )
        assert not infeasible.feasible
        # FRaZ reports the closest observed step (Sec. V-B3).
        assert min(abs(infeasible.ratio - lo_step), abs(infeasible.ratio - hi_step)) < (
            hi_step - lo_step
        )
