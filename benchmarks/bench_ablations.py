"""Ablations of FRaZ's design choices.

Four knobs the paper fixes with brief justification; each ablation measures
the knob's actual effect on this implementation:

* **loss shape** — clamped square vs clamped absolute value ("we found the
  quadratic version converged faster", Sec. V-B2);
* **region overlap** — 10% overlap avoids border-case worst-time searches
  (Fig. 5);
* **region count** — "there seems to be a floor for how many iterations
  are required ... limited benefit to splitting into more than a few
  ranges"; 12 is the paper's default;
* **time-step reuse** — trying the previous bound first retrains only a
  few times per series (Sec. V-C).
"""

from __future__ import annotations

import numpy as np

from repro.core.fields import tune_time_series
from repro.core.loss import clamped_absolute_loss, clamped_square_loss, cutoff_for
from repro.core.training import train
from repro.optimize import find_global_min
from repro.pressio.closures import RatioFunction
from repro.sz.compressor import SZCompressor


def test_ablation_loss_shape(benchmark, report, hurricane_small):
    """Square vs absolute loss: calls to reach the band over several targets."""
    data = hurricane_small.fields["TCf"].steps[0]
    sz = SZCompressor()
    lo, hi = sz.default_bound_range(data)
    targets = [6.0, 10.0, 16.0, 24.0]

    def run():
        stats = {}
        for label, loss_fn, squared in (
            ("square", clamped_square_loss, True),
            ("absolute", clamped_absolute_loss, False),
        ):
            calls = []
            hits = 0
            for target in targets:
                rf = RatioFunction(sz, data)
                res = find_global_min(
                    loss_fn(rf, target), lo, hi, max_calls=24,
                    cutoff=cutoff_for(target, 0.1, squared=squared), seed=0,
                )
                calls.append(res.n_calls)
                hits += res.hit_cutoff
            stats[label] = (float(np.mean(calls)), hits)
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "",
        "== Ablation: loss shape (paper: quadratic converged faster) ==",
        f"{'loss':<10} {'mean calls':>11} {'targets hit':>12}",
    )
    for label, (mean_calls, hits) in stats.items():
        report(f"{label:<10} {mean_calls:>11.1f} {hits:>12}/{len(targets)}")
    assert stats["square"][1] >= stats["absolute"][1] or (
        stats["square"][0] <= stats["absolute"][0] * 1.5
    )


def test_ablation_region_overlap(benchmark, report, hurricane_small):
    """Overlap 0% vs 10% vs 25%: success and cost across targets."""
    data = hurricane_small.fields["CLOUDf"].steps[0]

    def run():
        stats = {}
        for overlap in (0.0, 0.1, 0.25):
            evals = []
            feas = 0
            for target in (6.0, 10.0, 16.0):
                res = train(SZCompressor(), data, target, tolerance=0.1,
                            regions=6, overlap=overlap,
                            max_calls_per_region=10, seed=0)
                evals.append(res.evaluations)
                feas += res.feasible
            stats[overlap] = (float(np.mean(evals)), feas)
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "",
        "== Ablation: region overlap alpha (paper default 10%) ==",
        f"{'overlap':>8} {'mean evals':>11} {'feasible':>9}",
    )
    for overlap, (mean_evals, feas) in stats.items():
        report(f"{overlap:>8.2f} {mean_evals:>11.1f} {feas:>9}/3")
    # All variants should mostly succeed; overlap must not hurt success.
    assert stats[0.1][1] >= stats[0.0][1]


def test_ablation_region_count(benchmark, report, hurricane_small):
    """k = 1, 4, 12, 24 regions: diminishing returns past a few regions."""
    data = hurricane_small.fields["CLOUDf"].steps[0]

    def run():
        stats = {}
        for k in (1, 4, 12, 24):
            res = train(SZCompressor(), data, 10.0, tolerance=0.1,
                        regions=k, max_calls_per_region=10, seed=0)
            stats[k] = (res.evaluations, res.feasible, res.wall_seconds)
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "",
        "== Ablation: region count k (paper default 12) ==",
        f"{'k':>4} {'evals':>6} {'feasible':>9} {'wall (s)':>9}",
    )
    for k, (evals, feas, wall) in stats.items():
        report(f"{k:>4} {evals:>6} {str(feas):>9} {wall:>9.3f}")
    # The serial executor stops at the first feasible region, so more
    # regions must not multiply the work once one succeeds.
    assert stats[12][1]  # k=12 succeeds
    assert stats[24][0] <= 24 * 10  # budget honoured


def test_ablation_timestep_reuse(benchmark, report, hurricane_small):
    """Reuse on/off: total evaluations over a drifting series."""
    series = hurricane_small.fields["TCf"].steps[:8]

    def run():
        with_reuse = tune_time_series(SZCompressor(), series, 10.0,
                                      tolerance=0.1, seed=0)
        without = tune_time_series(SZCompressor(), series, 10.0,
                                   tolerance=0.1, seed=0,
                                   reuse_prediction=False)
        return with_reuse, without

    with_reuse, without = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "",
        "== Ablation: time-step error-bound reuse (Sec. V-C) ==",
        f"reuse ON : {with_reuse.total_evaluations:4d} evaluations, "
        f"retrains at {with_reuse.retrain_steps}",
        f"reuse OFF: {without.total_evaluations:4d} evaluations, "
        f"retrains at {without.retrain_steps}",
    )
    assert with_reuse.converged_fraction == 1.0
    assert with_reuse.total_evaluations < without.total_evaluations
    assert len(with_reuse.retrain_steps) <= 3
