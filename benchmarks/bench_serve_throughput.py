"""Service scheduler: compressor-call reduction and jobs/sec scaling.

The service's value proposition over one-shot CLI runs is structural:

* **request coalescing** — concurrent identical submissions attach to
  one in-flight computation instead of queueing their own;
* **a shared EvalCache** — whatever one job probed, every later job
  reuses, across clients and across time;
* **a resident worker pool** — job-level concurrency without paying
  process start-up per request.

This bench drives the acceptance workload from ISSUE 3: 8 clients
submitting the *same* small set of tune jobs (the overlap a busy tuning
service sees — many users asking for the popular dataset at the popular
target), measured against a serial replay where each submission pays
for itself, exactly as 32 separate CLI invocations would.

Acceptance floor: the service spends >= 30% fewer compressor calls
than serial submission.  The jobs/sec section reports worker-count
scaling; on single-core CI runners the assertion is only that more
workers is never pathological (<= 25% slower), while the report shows
the actual scaling measured.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.fraz import FRaZ
from repro.serve.jobs import JobSpec
from repro.serve.scheduler import Scheduler

N_CLIENTS = 8
TARGETS = (6.0, 9.0)
TOLERANCE = 0.15


def _make_fields() -> list[np.ndarray]:
    out = []
    for seed in (31, 32):
        r = np.random.default_rng(seed)
        out.append(r.standard_normal((20, 20, 8)).cumsum(axis=0).astype(np.float32))
    return out


def _workload(fields: list[np.ndarray]) -> list[dict]:
    """One client's submissions: every field at every target."""
    encoded = [JobSpec.encode_array(f) for f in fields]
    return [
        dict(kind="tune", target_ratio=t, tolerance=TOLERANCE, data_b64=b64)
        for b64 in encoded
        for t in TARGETS
    ]


def _serial_replay(fields: list[np.ndarray]) -> int:
    """Compressor calls when each submission pays for itself (CLI model:
    one fresh tuner — and thus one private cache — per invocation)."""
    calls = 0
    for _ in range(N_CLIENTS):
        for field in fields:
            for target in TARGETS:
                res = FRaZ(compressor="sz", target_ratio=target,
                           tolerance=TOLERANCE).tune(field)
                calls += res.compressor_calls
    return calls


def test_serve_coalescing_reduces_compressor_calls(report):
    fields = _make_fields()
    serial_calls = _serial_replay(fields)

    specs = _workload(fields)
    with Scheduler(workers=2, queue_size=64, paused=True) as sched:
        jobs = [sched.submit(dict(s)) for _ in range(N_CLIENTS) for s in specs]
        sched.resume()
        for job in jobs:
            assert job.wait(timeout=300), job.id
        stats = sched.stats_payload()

    service_calls = stats["search"]["compressor_calls"]
    saving = 1.0 - service_calls / serial_calls
    report(
        "",
        f"== Service vs serial submission: {N_CLIENTS} clients x "
        f"{len(specs)} overlapping tune jobs ==",
        f"serial compressor calls  : {serial_calls}",
        f"service compressor calls : {service_calls}",
        f"coalesced jobs           : {stats['jobs']['coalesced']} "
        f"of {stats['jobs']['submitted']}",
        f"cache                    : {stats['cache']}",
        f"calls saved              : {saving:.1%} (acceptance floor: 30%)",
    )
    assert all(j.state.value == "done" for j in jobs)
    assert stats["jobs"]["coalesced"] > 0
    assert saving >= 0.30

    # The savings must not change the answers: every job's bound matches
    # its serial counterpart.
    for spec, job in zip(specs * N_CLIENTS, jobs):
        direct = FRaZ(compressor="sz", target_ratio=spec["target_ratio"],
                      tolerance=TOLERANCE).tune(
            JobSpec.from_dict(spec).load_array())
        assert job.result["error_bound"] == direct.error_bound


def _run_distinct_jobs(workers: int, fields: list[np.ndarray]) -> float:
    """Jobs/sec over a batch of *distinct* tunes (no coalescing, cold
    cache) at a given worker count."""
    specs = [
        dict(kind="tune", target_ratio=t, tolerance=TOLERANCE,
             data_b64=JobSpec.encode_array(f))
        for i, f in enumerate(fields)
        for t in (5.0 + i, 7.5 + i, 10.0 + i)
    ]
    with Scheduler(workers=workers, queue_size=64, cache=False, paused=True) as sched:
        jobs = [sched.submit(s) for s in specs]
        t0 = time.perf_counter()
        sched.resume()
        for job in jobs:
            assert job.wait(timeout=300), job.id
        elapsed = time.perf_counter() - t0
    assert all(j.state.value == "done" for j in jobs)
    return len(jobs) / elapsed


def test_serve_jobs_per_second_scales_with_workers(report):
    fields = _make_fields()
    _run_distinct_jobs(1, fields)  # warm numpy/compressor code paths
    single = _run_distinct_jobs(1, fields)
    quad = _run_distinct_jobs(4, fields)
    scaling = quad / single
    report(
        "",
        "== Scheduler jobs/sec vs worker count (distinct jobs, no cache) ==",
        f"1 worker  : {single:6.2f} jobs/s",
        f"4 workers : {quad:6.2f} jobs/s",
        f"scaling   : {scaling:.2f}x "
        "(NumPy releases the GIL for part of each probe; gains track cores)",
    )
    # Adding workers must never be pathological, even on 1-core CI hosts.
    assert scaling >= 0.75
