"""Service scheduler: multi-core scaling of the process execution backend.

ISSUE 4's motivation: thread workers serialise the CPU-bound parts of a
tune job on the GIL, so ``repro serve -j 8`` barely beat ``-j 1`` for
pure-compute workloads.  The process backend dispatches each job to a
resident :class:`~repro.parallel.executor.ProcessJobPool`, so jobs/sec
should track cores.

Workload: a batch of *distinct* CPU-bound tune jobs (no coalescing, no
cache — every job pays its full search) run under 1 and 4 process
workers.

Acceptance floor (enforced in CI): **>= 1.6x jobs/sec with 4 process
workers vs 1** on hosts with >= 4 cores.  Like the other service bench,
the floor degrades on smaller CI hosts where the hardware cannot deliver
parallelism: >= 1.05x on 2-3 cores, and on a single core only "not
pathological" (>= 0.45x — process dispatch pays pickling with no cores to
win back).  The report always shows the measured scaling.

A parity section asserts the process backend returns bit-identical
results to thread execution, so the speed-up never costs determinism.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.serve.jobs import JobSpec
from repro.serve.scheduler import Scheduler

CORES = os.cpu_count() or 1
TOLERANCE = 0.15
N_FIELDS = 4
TARGETS_PER_FIELD = 3


def _make_fields() -> list[np.ndarray]:
    out = []
    for seed in (41, 42, 43, 44)[:N_FIELDS]:
        r = np.random.default_rng(seed)
        out.append(r.standard_normal((20, 20, 8)).cumsum(axis=0).astype(np.float32))
    return out


def _distinct_specs(fields: list[np.ndarray]) -> list[dict]:
    """CPU-bound workload: every job is unique, so nothing coalesces and
    (with the cache off) every probe really compresses."""
    return [
        dict(kind="tune", target_ratio=t, tolerance=TOLERANCE,
             data_b64=JobSpec.encode_array(f))
        for i, f in enumerate(fields)
        for t in (5.0 + i, 7.5 + i, 10.0 + i)[:TARGETS_PER_FIELD]
    ]


def _run(workers: int, specs: list[dict], executor: str = "process") -> tuple[float, list]:
    """Jobs/sec at a given worker count; returns (rate, job results)."""
    with Scheduler(workers=workers, queue_size=len(specs) + 1, cache=False,
                   executor=executor, paused=True) as sched:
        jobs = [sched.submit(dict(s)) for s in specs]
        t0 = time.perf_counter()
        sched.resume()
        for job in jobs:
            assert job.wait(timeout=600), job.id
        elapsed = time.perf_counter() - t0
    assert all(j.state.value == "done" for j in jobs), [
        (j.id, j.state.value, j.error) for j in jobs if j.state.value != "done"
    ]
    return len(jobs) / elapsed, [j.result for j in jobs]


def _floor() -> float:
    if CORES >= 4:
        return 1.6
    if CORES >= 2:
        return 1.05
    return 0.45


def test_process_backend_scales_jobs_per_second(report):
    fields = _make_fields()
    specs = _distinct_specs(fields)
    _run(1, specs)  # warm numpy/compressor code paths and fork machinery
    single, single_results = _run(1, specs)
    quad, quad_results = _run(4, specs)
    scaling = quad / single
    floor = _floor()
    report(
        "",
        f"== Process-backend jobs/sec: 4 workers vs 1 ({CORES} cores) ==",
        f"workload     : {len(specs)} distinct CPU-bound tune jobs, cache off",
        f"1 worker     : {single:6.2f} jobs/s",
        f"4 workers    : {quad:6.2f} jobs/s",
        f"scaling      : {scaling:.2f}x (floor on this host: {floor:.2f}x; "
        "1.6x enforced at >= 4 cores)",
    )
    # Determinism across worker counts: same jobs, same bits.
    for a, b in zip(single_results, quad_results):
        assert a["error_bound"] == b["error_bound"]
        assert a["ratio"] == b["ratio"]
    assert scaling >= floor


def test_process_backend_bit_matches_thread_backend(report):
    fields = _make_fields()
    specs = _distinct_specs(fields)[:3]
    _, thread_results = _run(2, specs, executor="thread")
    _, process_results = _run(2, specs, executor="process")
    for t, p in zip(thread_results, process_results):
        assert t["error_bound"] == p["error_bound"]
        assert t["ratio"] == p["ratio"]
        assert t["evaluations"] == p["evaluations"]
    report(
        "",
        "== Backend parity ==",
        f"{len(specs)} jobs bit-identical across thread and process execution",
    )
