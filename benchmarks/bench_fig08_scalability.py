"""Figure 8: strong scaling of the field/time-step fan-out.

Paper result (Hurricane, 36-252 Bebop cores): runtime drops steeply while
tasks still queue, then flattens at 180-216 cores where the makespan equals
the longest single field task (QCLOUD took 1022 s vs a <500 s 75th
percentile); sz:abs scales past zfp:accuracy because ZFP's sparser feasible
ratios leave more budget-exhausting infeasible searches.

We cannot host hundreds of cores, so the *measured* single-task
durations are replayed through a deterministic list scheduler
(:mod:`repro.parallel.simulate`) — the same quantity the paper analyses.
"""

from __future__ import annotations

from repro.core.fields import tune_time_series
from repro.parallel.simulate import simulate_scaling
from repro.pressio import make_compressor

_CORES = [1, 2, 4, 9, 13, 18, 26, 39]
# Scaled-down analog of the paper's 36..252-core sweep (13 fields here vs
# 13 fields x many steps there).


def _task_durations(dataset, compressor, target, steps):
    """Measured per-field search durations (the fan-out's task list)."""
    durations = {}
    for name, series in dataset.field_arrays().items():
        res = tune_time_series(
            compressor, series[:steps], target, tolerance=0.1,
            regions=4, max_calls_per_region=5, field_name=name, seed=0,
        )
        durations[name] = res.total_wall_seconds
    return durations


def test_fig08_strong_scaling(benchmark, report, hurricane_tiny):
    target = 10.0

    def run():
        out = {}
        for comp_name in ("sz", "zfp"):
            comp = make_compressor(comp_name)
            durations = _task_durations(hurricane_tiny, comp, target, steps=4)
            curve = simulate_scaling(list(durations.values()), _CORES)
            out[comp.describe()] = (durations, curve)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    report("", "== Fig. 8: strong scaling (simulated-cluster replay of measured "
           "task durations) ==")
    for label, (durations, curve) in out.items():
        longest = max(durations.values())
        report(
            f"-- {label}: longest field task "
            f"{max(durations, key=durations.get)} = {longest:.3f}s --",
            f"{'cores':>6} {'makespan (s)':>13} {'speedup':>8}",
        )
        base = curve[_CORES[0]]
        for c in _CORES:
            report(f"{c:6d} {curve[c]:13.4f} {base / curve[c]:8.2f}")

        # Monotone non-increasing, and floored at the longest task.
        values = [curve[c] for c in _CORES]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
        assert abs(values[-1] - longest) < 1e-9, (
            "scaling must flatten at the longest worker task"
        )

    # Paper: total sz runtime (feasible-rich) is below zfp (budget-burning).
    sz_total = sum(out["sz:abs"][0].values())
    zfp_total = sum(out["zfp:abs"][0].values())
    report(f"total task time: sz={sz_total:.2f}s zfp={zfp_total:.2f}s")
