"""Sec. V-B1 baseline comparison: FRaZ's optimizer vs binary search.

Paper result: "when searching for the target compression ratio 8:1 at the
48th time-step on the Hurricane-CLOUD field, our method requires only 6
iterations to converge to an acceptable solution, whereas binary search
needs 39 iterations" — because bisection climbs from the minimum possible
error bound through bounds that cannot produce an acceptable ratio.  On
non-monotonic curves (Fig. 3) bisection can fail outright.
"""

from __future__ import annotations

from repro.core.baselines import binary_search_ratio, grid_search_ratio
from repro.core.training import train
from repro.sz.compressor import SZCompressor


def test_baseline_iteration_comparison(benchmark, report, hurricane_small):
    data = hurricane_small.fields["CLOUDf"].steps[-1]
    target = 8.0

    def run():
        fraz = train(SZCompressor(), data, target, tolerance=0.1,
                     regions=6, max_calls_per_region=12, seed=0)
        binary = binary_search_ratio(SZCompressor(), data, target,
                                     tolerance=0.1, max_calls=64)
        grid = grid_search_ratio(SZCompressor(), data, target,
                                 tolerance=0.1, points=64)
        return fraz, binary, grid

    fraz, binary, grid = benchmark.pedantic(run, rounds=1, iterations=1)

    report(
        "",
        "== Sec. V-B1: iterations to reach rho_t=8 on Hurricane CLOUD "
        "(paper: FRaZ 6 vs binary search 39) ==",
        f"{'method':<14} {'iterations':>10} {'ratio':>8} {'feasible':>9}",
        f"{'FRaZ':<14} {fraz.evaluations:>10} {fraz.ratio:>8.3f} {str(fraz.feasible):>9}",
        f"{'binary':<14} {binary.evaluations:>10} {binary.ratio:>8.3f} {str(binary.feasible):>9}",
        f"{'grid':<14} {grid.evaluations:>10} {grid.ratio:>8.3f} {str(grid.feasible):>9}",
    )
    assert fraz.feasible
    # FRaZ needs no more evaluations than the exhaustive sweep, and is in
    # the same league as (or better than) bisection when both succeed.
    assert fraz.evaluations <= grid.evaluations or grid.feasible
    if binary.feasible:
        assert fraz.evaluations <= binary.evaluations * 3
