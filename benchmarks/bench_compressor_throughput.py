"""Per-compressor throughput micro-benchmarks.

Sec. VI-B2/B3 leans on per-compression cost differences ("ZFP may take
less time for each compression"; FRaZ's runtime is compression-dominated).
These are true pytest-benchmark timings — multiple rounds, statistics in
the standard table — of compress and decompress for every backend on the
same Hurricane TCf field, so the relative speeds behind Figs. 7/8 are
auditable on this implementation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pressio import make_compressor

_BACKENDS = ["sz", "sz-interp", "zfp", "zfp-rate", "mgard"]


@pytest.fixture(scope="module")
def field(request):
    r = np.random.default_rng(17)
    x, y, z = np.meshgrid(
        np.linspace(0, 4, 48), np.linspace(0, 4, 48), np.linspace(0, 4, 24),
        indexing="ij",
    )
    return (np.sin(x) * np.cos(y + z) + 0.01 * r.standard_normal(x.shape)).astype(
        np.float32
    )


def _configured(name: str, data: np.ndarray):
    if name == "zfp-rate":
        return make_compressor(name, error_bound=4.0)
    span = float(data.max() - data.min())
    return make_compressor(name, error_bound=span * 1e-3)


@pytest.mark.parametrize("name", _BACKENDS)
def test_compress_throughput(benchmark, name, field):
    comp = _configured(name, field)
    payload = benchmark(comp.compress, field)
    assert payload.ratio > 1.0
    benchmark.extra_info["ratio"] = round(payload.ratio, 2)
    benchmark.extra_info["MB/s"] = round(
        field.nbytes / 1e6 / benchmark.stats.stats.mean, 1
    )


@pytest.mark.parametrize("name", _BACKENDS)
def test_decompress_throughput(benchmark, name, field):
    comp = _configured(name, field)
    payload = comp.compress(field)
    recon = benchmark(comp.decompress, payload)
    assert recon.shape == field.shape
    benchmark.extra_info["MB/s"] = round(
        field.nbytes / 1e6 / benchmark.stats.stats.mean, 1
    )
