"""Table II analog: the hardware/software inventory of this run.

The paper's Table II pins Bebop's hardware (36-core Xeon E5-2695v4, 128 GB)
and the software stack (SZ 2.1.7, ZFP 0.5.5, MGARD 0.0.0.2, Dlib 2.28,
OpenMPI 2.1.1).  We record the local equivalents — the from-scratch
compressor implementations and their versions live in this package.
"""

from __future__ import annotations

import os
import platform
import sys

import numpy as np
import scipy

import repro


def test_table2_environment(benchmark, report):
    rows = benchmark.pedantic(
        lambda: [
            ("OS", platform.platform()),
            ("CPU", platform.processor() or platform.machine()),
            ("cores", str(os.cpu_count())),
            ("Python", sys.version.split()[0]),
            ("NumPy", np.__version__),
            ("SciPy", scipy.__version__),
            ("repro (FRaZ + SZ/ZFP/MGARD reimpl.)", repro.__version__),
        ],
        rounds=1,
        iterations=1,
    )
    report("", "== Table II analog: hardware and software used ==")
    for key, value in rows:
        report(f"{key:<38} {value}")
    assert any(k == "NumPy" for k, _ in rows)
