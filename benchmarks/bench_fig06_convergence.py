"""Figure 6: good vs bad convergence across time-steps (Hurricane CLOUD).

Paper result: with rho_t = 8 (feasible) FRaZ converges on >90% of the 48
time-steps and retrains only 4 times (steps 0, 8, 15, 29); with rho_t = 15
(infeasible for most steps) the achieved ratio oscillates around the band.
This bench reproduces both regimes on the CLOUDf analog series.
"""

from __future__ import annotations

from repro.core.fields import tune_time_series
from repro.sz.compressor import SZCompressor


def _series(hurricane):
    return hurricane.fields["CLOUDf"].steps


def test_fig06_good_convergence_case(benchmark, report, hurricane_small):
    series = _series(hurricane_small)
    target = 8.0

    res = benchmark.pedantic(
        lambda: tune_time_series(
            SZCompressor(), series, target, tolerance=0.1,
            field_name="CLOUDf", seed=0,
        ),
        rounds=1,
        iterations=1,
    )

    report(
        "",
        f"== Fig. 6(b) good case: rho_t={target}, band=[{target*0.9:.1f}, "
        f"{target*1.1:.1f}] (paper: >90% steps converge, 4 retrains/48) ==",
        f"{'step':>4} {'ratio':>8} {'in band':>8} {'reused':>7}",
    )
    for t, s in enumerate(res.steps):
        report(
            f"{t:4d} {s.ratio:8.3f} {str(s.within_tolerance):>8} "
            f"{str(s.used_prediction):>7}"
        )
    report(
        f"converged fraction: {res.converged_fraction:.2f}; "
        f"retrained at steps {res.retrain_steps}"
    )
    assert res.converged_fraction >= 0.9
    assert len(res.retrain_steps) <= max(4, len(series) // 3)


def test_fig06_bad_convergence_case(benchmark, report, hurricane_small):
    series = _series(hurricane_small)

    # A target above every step's feasible ceiling, like the paper's
    # rho_t=15 on CLOUD where later time-steps cannot reach the band.
    sz = SZCompressor()
    ceilings = []
    for step in series[:: max(1, len(series) // 4)]:
        span = float(step.max() - step.min())
        ceilings.append(sz.with_error_bound(span).compress(step).ratio)
    target = max(ceilings) * 1.25

    res = benchmark.pedantic(
        lambda: tune_time_series(
            SZCompressor(), series, target, tolerance=0.02,
            field_name="CLOUDf", max_calls_per_region=5, regions=4, seed=0,
        ),
        rounds=1,
        iterations=1,
    )

    report(
        "",
        f"== Fig. 6(a) bad case: rho_t={target:.1f} (mostly infeasible) ==",
        f"{'step':>4} {'ratio':>9} {'in band':>8}",
    )
    for t, s in enumerate(res.steps):
        report(f"{t:4d} {s.ratio:9.3f} {str(s.within_tolerance):>8}")
    report(f"converged fraction: {res.converged_fraction:.2f}")
    assert res.converged_fraction <= 0.5


def test_fig06_larger_tolerance_rescues_bad_case(benchmark, report, hurricane_small):
    """Paper: 'a larger tolerance (eps=.2) would have allowed even this
    case to converge for all time-steps'. Verified on a mildly infeasible
    target."""
    series = _series(hurricane_small)[:6]
    sz = SZCompressor()
    # Pick a target 10% past an achievable ratio so eps=0.02 straddles the
    # gap but eps=0.2 covers it.
    span = float(series[0].max() - series[0].min())
    reachable = sz.with_error_bound(span * 0.02).compress(series[0]).ratio
    target = reachable * 1.1

    tight = tune_time_series(SZCompressor(), series, target, tolerance=0.02,
                             max_calls_per_region=6, regions=6, seed=0)
    loose = benchmark.pedantic(
        lambda: tune_time_series(SZCompressor(), series, target, tolerance=0.2,
                                 regions=6, seed=0),
        rounds=1,
        iterations=1,
    )
    report(
        "",
        f"== Fig. 6 follow-up: tolerance rescue at rho_t={target:.2f} ==",
        f"eps=0.02 converged {tight.converged_fraction:.2f}; "
        f"eps=0.20 converged {loose.converged_fraction:.2f}",
    )
    assert loose.converged_fraction >= tight.converged_fraction
    assert loose.converged_fraction >= 0.9
