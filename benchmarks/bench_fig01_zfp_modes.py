"""Figure 1: ZFP fixed-accuracy vs fixed-rate data distortion.

Paper result (Hurricane TCf, CR = 50:1): fixed-accuracy mode PSNR = 55.3 vs
fixed-rate PSNR = 45.4 — up to 30 dB rate-distortion gap across bit rates.
This bench regenerates (b) the rate-distortion series for both modes and
the caption's CR = 50:1 comparison row.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import maxerr
from repro.pressio import evaluate, make_compressor

_RATES = [1.0, 2.0, 4.0, 8.0, 12.0, 16.0]


def _accuracy_series(data):
    span = float(data.max() - data.min())
    rows = []
    for eb in np.geomspace(span * 1e-6, span, 16):
        rec = evaluate(make_compressor("zfp", error_bound=float(eb)), data)
        rows.append((rec.bit_rate, rec.psnr))
    return rows


def _rate_series(data):
    rows = []
    for rate in _RATES:
        rec = evaluate(make_compressor("zfp-rate", error_bound=rate), data)
        rows.append((rec.bit_rate, rec.psnr))
    return rows


def test_fig01_rate_distortion_series(benchmark, report, hurricane_small):
    data = hurricane_small.fields["TCf"].steps[0]

    acc = _accuracy_series(data)
    rate = _rate_series(data)
    benchmark.pedantic(
        lambda: make_compressor("zfp", error_bound=1e-2).compress(data),
        rounds=3,
        iterations=1,
    )

    report(
        "",
        "== Fig. 1(b): ZFP rate distortion, fixed-accuracy vs fixed-rate "
        "(Hurricane TCf analog) ==",
        f"{'bit rate':>9}  {'PSNR acc (dB)':>14}",
    )
    for br, ps in sorted(acc):
        report(f"{br:9.3f}  {ps:14.2f}")
    report(f"{'bit rate':>9}  {'PSNR rate (dB)':>14}")
    for br, ps in sorted(rate):
        report(f"{br:9.3f}  {ps:14.2f}")

    # Paper's qualitative claim: at comparable bit rates, accuracy mode has
    # materially higher PSNR.  Compare via interpolation at the rate-mode
    # bit rates within the accuracy series' span.
    acc_br = np.array([b for b, _ in sorted(acc)])
    acc_ps = np.array([p for _, p in sorted(acc)])
    wins = total = 0
    for br, ps in rate:
        if acc_br[0] <= br <= acc_br[-1]:
            interp = float(np.interp(br, acc_br, acc_ps))
            total += 1
            wins += interp > ps
    assert total > 0 and wins == total, (
        f"accuracy mode should dominate at every bit rate; won {wins}/{total}"
    )


def test_fig01_cr50_comparison(benchmark, report, hurricane_tiny):
    data = hurricane_tiny.fields["TCf"].steps[0]

    def run():
        # Accuracy mode tuned (by sweep) to ~CR 50, vs rate mode at 32/50.
        best = None
        for eb in np.geomspace(1e-4, 4.0, 40):
            c = make_compressor("zfp", error_bound=float(eb))
            f = c.compress(data)
            if best is None or abs(f.ratio - 50.0) < abs(best[1] - 50.0):
                best = (float(eb), f.ratio)
        acc = evaluate(make_compressor("zfp", error_bound=best[0]), data)
        rate = evaluate(make_compressor("zfp-rate", error_bound=32.0 / 50.0), data)
        return acc, rate

    acc, rate = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "",
        "== Fig. 1 caption: CR ~= 50:1 comparison (paper: acc PSNR=55.3 "
        "maxerr=4.2 SSIM=0.94 | rate PSNR=45.4 maxerr=33.7 SSIM=0.94) ==",
        f"accuracy : CR={acc.ratio:7.1f} PSNR={acc.psnr:6.2f} "
        f"maxerr={acc.max_error:10.3e} SSIM={acc.ssim:6.4f} ACF={acc.acf_error:5.3f}",
        f"fixedrate: CR={rate.ratio:7.1f} PSNR={rate.psnr:6.2f} "
        f"maxerr={rate.max_error:10.3e} SSIM={rate.ssim:6.4f} ACF={rate.acf_error:5.3f}",
    )
    assert acc.psnr > rate.psnr
    assert acc.max_error < rate.max_error
