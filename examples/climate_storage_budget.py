#!/usr/bin/env python
"""Use case 1 (Sec. II-B): fit a multi-field climate run into a storage budget.

A CESM-style campaign produces many 2D fields over many time-steps; the
storage allocation forces a 12:1 overall reduction (the paper's motivating
Summit example needs >=10:1).  FRaZ tunes each field independently — with
error-bound reuse across time-steps — so every field lands on the budget
while staying error-bounded.

Run:  python examples/climate_storage_budget.py
"""

import numpy as np

from repro import FRaZ
from repro.datasets import load_dataset


def main() -> None:
    dataset = load_dataset("CESM", "small")
    target = 12.0

    fraz = FRaZ(compressor="sz", target_ratio=target, tolerance=0.1)
    result = fraz.tune_dataset(dataset.field_arrays())

    print(f"CESM analog: {dataset.n_fields} fields x {dataset.n_steps} steps, "
          f"{dataset.nbytes / 1e6:.1f} MB raw; storage budget {target}:1\n")
    print(f"{'field':<10} {'converged':>10} {'retrains':>9} {'evals':>6} "
          f"{'mean ratio':>11}")

    total_raw = 0
    total_compressed = 0
    for name, series_result in result.fields.items():
        ratios = [s.ratio for s in series_result.steps]
        print(
            f"{name:<10} {series_result.converged_fraction:>10.2f} "
            f"{len(series_result.retrain_steps):>9} "
            f"{series_result.total_evaluations:>6} {np.mean(ratios):>11.2f}"
        )
        for step_data, step_res in zip(dataset.fields[name].steps, series_result.steps):
            total_raw += step_data.nbytes
            total_compressed += step_data.nbytes / step_res.ratio

    overall = total_raw / total_compressed
    print(f"\noverall achieved reduction: {overall:.2f}:1 "
          f"(budget {target}:1, tolerance +-10%)")
    assert overall >= target * 0.8, "campaign misses its storage budget"


if __name__ == "__main__":
    main()
