#!/usr/bin/env python
"""Use case 2 (Sec. II-B): pick the best compressor at a fixed compressed size.

A user with a fixed storage budget wants the *highest-fidelity* compressor
at that budget — the paper's second motivating scenario, which without
FRaZ requires manual trial-and-error per compressor.  Here FRaZ drives SZ,
ZFP and MGARD to the same target ratio on a cosmology field and reports
the full quality suite (PSNR / SSIM / ACF of error), plus ZFP's built-in
fixed-rate mode as the baseline.

Run:  python examples/compressor_comparison.py
"""

from repro import FRaZ, evaluate, make_compressor
from repro.datasets import load_dataset


def main() -> None:
    dataset = load_dataset("NYX", "small")
    data = dataset.fields["temperature"].steps[0]
    target = 12.0

    print(f"NYX temperature analog {data.shape}, target {target}:1\n")
    header = (f"{'compressor':<17} {'CR':>7} {'bitrate':>8} {'PSNR':>8} "
              f"{'SSIM':>7} {'ACF(err)':>9} {'feasible':>9}")
    print(header)
    print("-" * len(header))

    records = {}
    for name in ("sz", "zfp", "mgard"):
        fraz = FRaZ(compressor=name, target_ratio=target, tolerance=0.1)
        result = fraz.tune(data)
        tuned = make_compressor(name, error_bound=result.error_bound)
        rec = evaluate(tuned, data)
        records[f"{name}(FRaZ)"] = rec
        print(f"{name + '(FRaZ)':<17} {rec.ratio:>7.2f} {rec.bit_rate:>8.3f} "
              f"{rec.psnr:>8.2f} {rec.ssim:>7.4f} {rec.acf_error:>9.3f} "
              f"{str(result.feasible):>9}")

    rate_rec = evaluate(make_compressor("zfp-rate", error_bound=32.0 / target), data)
    records["zfp(fixed-rate)"] = rate_rec
    print(f"{'zfp(fixed-rate)':<17} {rate_rec.ratio:>7.2f} {rate_rec.bit_rate:>8.3f} "
          f"{rate_rec.psnr:>8.2f} {rate_rec.ssim:>7.4f} {rate_rec.acf_error:>9.3f} "
          f"{'n/a':>9}")

    best = max(records, key=lambda k: records[k].psnr)
    print(f"\nbest fidelity at this budget: {best} "
          f"({records[best].psnr:.2f} dB)")


if __name__ == "__main__":
    main()
