#!/usr/bin/env python
"""Quickstart: fixed-ratio compression of one field in five lines.

Run:  python examples/quickstart.py

Creates a smooth 3D field, asks FRaZ to compress it at exactly 10:1
(+-10%), and verifies both the achieved ratio and the error bound of the
reconstruction.
"""

import numpy as np

from repro import FRaZ


def main() -> None:
    # A smooth synthetic field (any float32/float64 1D-3D array works).
    rng = np.random.default_rng(0)
    x, y, z = np.meshgrid(
        np.linspace(0, 4, 64), np.linspace(0, 4, 64), np.linspace(0, 4, 32),
        indexing="ij",
    )
    data = (np.sin(x) * np.cos(y) * np.exp(-0.2 * z)
            + 0.01 * rng.standard_normal(x.shape)).astype(np.float32)

    # Fixed-ratio compression: 10:1, within 10%.
    fraz = FRaZ(compressor="sz", target_ratio=10.0, tolerance=0.1)
    payload, result = fraz.compress(data)

    print(f"target ratio      : {fraz.target_ratio}:1 (+-{fraz.tolerance:.0%})")
    print(f"achieved ratio    : {payload.ratio:.2f}:1")
    print(f"error bound found : {result.error_bound:.4e}")
    print(f"compressor calls  : {result.evaluations}")
    print(f"feasible          : {result.feasible}")

    recon = fraz.decompress(payload)
    max_err = np.abs(recon.astype(np.float64) - data.astype(np.float64)).max()
    print(f"max |d - d'|      : {max_err:.4e} (bound {result.error_bound:.4e})")
    assert max_err <= result.error_bound
    assert result.within_tolerance


if __name__ == "__main__":
    main()
