#!/usr/bin/env python
"""Paper future work #2: online in-situ fixed-ratio compression.

A simulation emits snapshots as it runs; each snapshot must leave the node
compressed at a fixed ratio (I/O budget) without stalling the solver.
:class:`repro.core.online.OnlineFRaZ` keeps the cost at one compression
per snapshot in steady state, retrains automatically when the physics
changes regime, and every payload stays error-bounded.

The script simulates a run with a mid-stream regime change (a "shock"
arrives at step 12) and archives every compressed snapshot into one
random-access ``.frza`` file — the paper's per-time-step access pattern.

Run:  python examples/in_situ_online.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.online import OnlineFRaZ
from repro.io.files import Archive
from repro.pressio.registry import make_compressor


def simulate_snapshots(n_steps=24, shape=(48, 48, 24), shock_at=12):
    """Smoothly evolving field; a sharp front appears at ``shock_at``."""
    rng = np.random.default_rng(7)
    x, y, z = np.meshgrid(*(np.linspace(0, 4, s) for s in shape), indexing="ij")
    for t in range(n_steps):
        field = np.sin(x + 0.05 * t) * np.cos(y - 0.03 * t) * np.exp(-0.1 * z)
        if t >= shock_at:
            front = 1.0 / (1.0 + np.exp(-40 * (x - 0.15 * (t - shock_at) - 1.0)))
            field = field + 2.0 * front
        yield (field + 0.01 * rng.standard_normal(shape)).astype(np.float32)


def main() -> None:
    target = 10.0
    tuner = OnlineFRaZ(compressor="sz", target_ratio=target, tolerance=0.1)
    archive_path = Path(tempfile.gettempdir()) / "in_situ_run.frza"

    print(f"in-situ run: target {target}:1, band [{tuner.band[0]:.1f}, "
          f"{tuner.band[1]:.1f}]\n")
    print(f"{'step':>4} {'ratio':>7} {'bound':>10} {'retrained':>10} {'ms':>7}")

    with Archive.create(archive_path) as archive:
        for t, snapshot in enumerate(simulate_snapshots()):
            result = tuner.push(snapshot)
            marker = " <-- shock" if t == 12 else ""
            print(f"{t:>4} {result.ratio:>7.2f} {result.error_bound:>10.3e} "
                  f"{str(result.retrained):>10} {result.seconds * 1e3:>7.1f}"
                  f"{marker}")
            archive.add(
                f"field/t{t:03d}",
                result.payload,
                make_compressor("sz", error_bound=result.error_bound),
                metadata={"step": t, "in_band": result.in_band},
            )

    print(f"\nretrained {tuner.retrain_count}/{tuner.frames_seen} steps "
          f"(cold start + regime changes only)")

    # Random access: pull one mid-run snapshot back out.
    reader = Archive.open(archive_path)
    data, meta = reader.load("field/t015")
    print(f"random access t015: shape {data.shape}, "
          f"stored ratio {meta['ratio']:.2f}:1, in_band={meta['user']['in_band']}")
    archive_path.unlink()


if __name__ == "__main__":
    main()
