#!/usr/bin/env python
"""Use case 3 (Sec. II-B): match an instrument's I/O bandwidth constraint.

LCLS-II produces up to 250 GB/s against 25 GB/s of storage bandwidth, so
acquisitions must compress at >=10:1 *online*.  This example simulates the
streaming setting: frames arrive one at a time; FRaZ trains on the first
frame, then each subsequent frame reuses the previous frame's error bound
and retrains only when the data drifts out of the ratio band — the paper's
time-step optimisation, which makes the steady-state cost one compression
per frame.

It also demonstrates the error-control constraint (Eq. 2): the search is
capped at a maximum allowed error U, so downstream analysis keeps a
quantitative guarantee.

Run:  python examples/instrument_bandwidth.py
"""

import numpy as np

from repro import FRaZ, make_compressor
from repro.datasets.base import fourier_field


def make_frames(n_frames: int = 24, shape=(96, 96)) -> list[np.ndarray]:
    """Detector-like frames: smooth diffraction rings + drifting content."""
    rng = np.random.default_rng(42)
    base = fourier_field(shape, n_frames, rng, n_modes=20, max_wavenumber=5.0,
                         drift=0.06, noise=0.01)
    yy, xx = np.meshgrid(*(np.linspace(-1, 1, s) for s in shape), indexing="ij")
    rings = np.float32(np.exp(-((np.hypot(yy, xx) - 0.6) ** 2) / 0.01))
    return [np.float32(50.0) * (rings + 0.4 * f) for f in base]


def main() -> None:
    frames = make_frames()
    target = 10.0  # bandwidth ratio: 250 GB/s in, 25 GB/s out
    max_error = 0.5  # the beamline's analysis tolerance U

    fraz = FRaZ(compressor="sz", target_ratio=target, tolerance=0.15,
                max_error_bound=max_error)

    print(f"streaming {len(frames)} frames, target {target}:1, U={max_error}\n")
    print(f"{'frame':>5} {'ratio':>7} {'bound':>10} {'evals':>6} {'reused':>7}")

    prediction = None
    retrains = 0
    for i, frame in enumerate(frames):
        result = fraz.tune(frame, prediction=prediction)
        if not result.used_prediction:
            retrains += 1
        if result.feasible:
            prediction = result.error_bound
        print(f"{i:>5} {result.ratio:>7.2f} {result.error_bound:>10.3e} "
              f"{result.evaluations:>6} {str(result.used_prediction):>7}")

        # The recommended bound always respects the analysis tolerance.
        assert result.error_bound <= max_error

    print(f"\nretrained on {retrains}/{len(frames)} frames "
          f"(steady state costs one compression per frame)")

    # Verify the guarantee end-to-end on the last frame.
    if prediction is None:
        raise SystemExit("no frame converged; loosen the target or raise U")
    compressor = make_compressor("sz", error_bound=prediction)
    payload = compressor.compress(frames[-1])
    recon = compressor.decompress(payload)
    err = np.abs(recon.astype(np.float64) - frames[-1].astype(np.float64)).max()
    print(f"last frame: ratio {payload.ratio:.2f}:1, max error {err:.3e} <= U")
    assert err <= max_error


if __name__ == "__main__":
    main()
